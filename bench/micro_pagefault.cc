// Page-fault path microbenchmark: the virtual latency of faulting one page
// from each layer of the hierarchy — local scache DRAM, a remote node's
// scache, each storage tier, and a backend stage-in. These are the
// latencies the prefetcher (Algorithm 1) hides.
//
// Plain executable on the shared BenchReport schema (BENCH_micro_pagefault
// .json): one metric per layer plus a p50/p99 series across --reps runs.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mm/mega_mmap.h"

namespace {

using namespace mm;

constexpr std::uint64_t kPage = 64 * 1024;

volatile double g_sink = 0.0;

/// Measures the virtual seconds for rank 0 to fault `reads` distinct pages
/// under the given tier grants, after `setup` has positioned the data.
double FaultCost(const std::vector<storage::TierGrant>& grants,
                 bool remote_owner, bool from_backend,
                 const std::string& dir) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = grants;
  so.enable_prefetch = false;
  so.enable_organizer = false;
  core::Service svc(cluster.get(), so);
  const std::uint64_t n = 64 * kPage / sizeof(double);
  std::string key = from_backend
                        ? "posix://" + dir + "/fault_bench.bin"
                        : std::string("fault_bench_volatile");
  core::VectorOptions vo;
  vo.page_size = kPage;
  vo.pcache_bytes = 4 * kPage;  // tiny: almost every page faults
  vo.nonvolatile = from_backend;
  if (from_backend) {
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    if (!resolved->first->Exists(resolved->second)) {
      // Exists() was just checked; creation races are not a bench concern.
      (void)resolved->first->Create(resolved->second, n * sizeof(double));
    }
  }
  double fault_time = 0;
  auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    Vector<double> v(svc, ctx, key, n, vo);
    comm::Communicator comm(&ctx);
    if (!from_backend) {
      // Standard PGAS split: each rank materializes its own half, so the
      // lower half of the pages lives on node 0 and the upper half on
      // node 1 — rank 0 then measures whichever half the layer asks for.
      v.Pgas(ctx.rank(), 2);
      auto tx = v.SeqTxBegin(v.local_off(), v.local_off() + v.local_size(),
                             core::MM_WRITE_ONLY);
      for (std::uint64_t i = v.local_off();
           i < v.local_off() + v.local_size(); ++i) {
        v[i] = 1.0;
      }
      v.TxEnd();
    }
    comm.Barrier();
    if (ctx.rank() == 0) {
      // Touch one element per page of the chosen half: every touch is a
      // fault (remote halves cross the network; backend runs page in the
      // whole vector from stage-in).
      const std::uint64_t pages = from_backend ? 64 : 32;
      const std::uint64_t first =
          (!from_backend && remote_owner) ? 32 : 0;
      double start = ctx.clock().now();
      std::uint64_t epp = kPage / sizeof(double);
      for (std::uint64_t p = first; p < first + pages; ++p) {
        g_sink = v.Read(p * epp);
      }
      fault_time = (ctx.clock().now() - start) / static_cast<double>(pages);
    }
  });
  if (!result.ok()) return -1;
  return fault_time;
}

std::string ScratchDir() {
  auto dir = std::filesystem::temp_directory_path() / "mm_fault_bench";
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct Layer {
  const char* name;
  std::vector<storage::TierGrant> grants;
  bool remote_owner;
  bool from_backend;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_micro_pagefault.json";
  const bool csv = mmbench::CsvMode(argc, argv);
  const int reps = mmbench::Reps(argc, argv);
  const std::string dir = ScratchDir();

  const std::vector<Layer> layers = {
      {"local_dram", {{sim::TierKind::kDram, GIGABYTES(1)}}, false, false},
      {"remote_dram", {{sim::TierKind::kDram, GIGABYTES(1)}}, true, false},
      {"nvme_tier",
       {{sim::TierKind::kDram, 2 * kPage}, {sim::TierKind::kNvme, GIGABYTES(1)}},
       false,
       false},
      {"hdd_tier",
       {{sim::TierKind::kDram, 2 * kPage}, {sim::TierKind::kHdd, GIGABYTES(1)}},
       false,
       false},
      {"backend_stage_in",
       {{sim::TierKind::kDram, GIGABYTES(1)}},
       false,
       true},
  };

  mmbench::BenchReport report("micro_pagefault");
  report.Config("page_bytes", static_cast<double>(kPage));
  report.Config("reps", reps);
  mm::TablePrinter table({"layer", "virtual_us_per_fault"});
  for (const Layer& layer : layers) {
    mm::StatAccumulator us;
    for (int r = 0; r < reps; ++r) {
      double t = FaultCost(layer.grants, layer.remote_owner,
                           layer.from_backend, dir);
      if (t < 0) {
        std::fprintf(stderr, "%s: run failed\n", layer.name);
        return 1;
      }
      us.Add(t * 1e6);
    }
    table.AddRow({layer.name, mmbench::Fmt(us.Mean())});
    report.Metric(std::string(layer.name) + "_us_per_fault", us.Mean());
    report.Series(layer.name, us);
  }
  std::printf("%s", table.Render(csv).c_str());
  if (!report.Write(out_path)) return 1;
  return 0;
}
