// Page-fault path microbenchmark: the virtual latency of faulting one page
// from each layer of the hierarchy — local scache DRAM, a remote node's
// scache, each storage tier, and a backend stage-in. These are the
// latencies the prefetcher (Algorithm 1) hides.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "mm/mega_mmap.h"

namespace {

using namespace mm;

constexpr std::uint64_t kPage = 64 * 1024;

/// Measures the virtual seconds for rank 0 to fault `reads` distinct pages
/// under the given tier grants, after `setup` has positioned the data.
double FaultCost(const std::vector<storage::TierGrant>& grants,
                 bool remote_owner, bool from_backend,
                 const std::string& dir) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = grants;
  so.enable_prefetch = false;
  so.enable_organizer = false;
  core::Service svc(cluster.get(), so);
  const std::uint64_t n = 64 * kPage / sizeof(double);
  std::string key = from_backend
                        ? "posix://" + dir + "/fault_bench.bin"
                        : std::string("fault_bench_volatile");
  core::VectorOptions vo;
  vo.page_size = kPage;
  vo.pcache_bytes = 4 * kPage;  // tiny: almost every page faults
  vo.nonvolatile = from_backend;
  if (from_backend) {
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    if (!resolved->first->Exists(resolved->second)) {
      // Exists() was just checked; creation races are not a bench concern.
      (void)resolved->first->Create(resolved->second, n * sizeof(double));
    }
  }
  double fault_time = 0;
  auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    Vector<double> v(svc, ctx, key, n, vo);
    comm::Communicator comm(&ctx);
    if (!from_backend) {
      // Producer rank materializes all pages (locally or remotely).
      int producer = remote_owner ? 1 : 0;
      if (ctx.rank() == producer) {
        v.Pgas(0, 1);  // producer owns everything
        auto tx = v.SeqTxBegin(0, n, core::MM_WRITE_ONLY);
        for (std::uint64_t i = 0; i < n; ++i) v[i] = 1.0;
        v.TxEnd();
      }
    }
    comm.Barrier();
    if (ctx.rank() == 0) {
      double start = ctx.clock().now();
      // Touch one element per page: every touch is a fault.
      std::uint64_t epp = kPage / sizeof(double);
      for (std::uint64_t p = 0; p < 64; ++p) {
        benchmark::DoNotOptimize(v.Read(p * epp));
      }
      fault_time = (ctx.clock().now() - start) / 64.0;
    }
  });
  if (!result.ok()) return -1;
  return fault_time;
}

std::string ScratchDir() {
  auto dir = std::filesystem::temp_directory_path() / "mm_fault_bench";
  std::filesystem::create_directories(dir);
  return dir.string();
}

void BM_FaultLocalDram(benchmark::State& state) {
  double t = 0;
  for (auto _ : state) {
    t = FaultCost({{sim::TierKind::kDram, GIGABYTES(1)}}, false, false,
                  ScratchDir());
  }
  state.counters["virtual_us_per_fault"] = t * 1e6;
}
BENCHMARK(BM_FaultLocalDram)->Unit(benchmark::kMillisecond);

void BM_FaultRemoteDram(benchmark::State& state) {
  double t = 0;
  for (auto _ : state) {
    t = FaultCost({{sim::TierKind::kDram, GIGABYTES(1)}}, true, false,
                  ScratchDir());
  }
  state.counters["virtual_us_per_fault"] = t * 1e6;
}
BENCHMARK(BM_FaultRemoteDram)->Unit(benchmark::kMillisecond);

void BM_FaultNvmeTier(benchmark::State& state) {
  // DRAM grant too small for the data: pages live in NVMe.
  double t = 0;
  for (auto _ : state) {
    t = FaultCost({{sim::TierKind::kDram, 2 * kPage},
                   {sim::TierKind::kNvme, GIGABYTES(1)}},
                  false, false, ScratchDir());
  }
  state.counters["virtual_us_per_fault"] = t * 1e6;
}
BENCHMARK(BM_FaultNvmeTier)->Unit(benchmark::kMillisecond);

void BM_FaultHddTier(benchmark::State& state) {
  double t = 0;
  for (auto _ : state) {
    t = FaultCost({{sim::TierKind::kDram, 2 * kPage},
                   {sim::TierKind::kHdd, GIGABYTES(1)}},
                  false, false, ScratchDir());
  }
  state.counters["virtual_us_per_fault"] = t * 1e6;
}
BENCHMARK(BM_FaultHddTier)->Unit(benchmark::kMillisecond);

void BM_FaultBackendStageIn(benchmark::State& state) {
  double t = 0;
  for (auto _ : state) {
    t = FaultCost({{sim::TierKind::kDram, GIGABYTES(1)}}, false, true,
                  ScratchDir());
  }
  state.counters["virtual_us_per_fault"] = t * 1e6;
}
BENCHMARK(BM_FaultBackendStageIn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
