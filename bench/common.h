// Shared helpers for the figure-reproduction benchmarks: repeated runs with
// averaging (the paper runs each experiment 3 times and reports the
// average), dataset staging, table/CSV output, and scaled-down experiment
// geometry (documented per figure in EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "mm/apps/datagen.h"
#include "mm/mega_mmap.h"
#include "mm/util/stats.h"

namespace mmbench {

/// True when the binary was invoked with --csv.
inline bool CsvMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return true;
  }
  return false;
}

/// Repetitions per configuration (paper: 3).
inline int Reps(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--reps") return std::atoi(argv[i + 1]);
  }
  return 3;
}

/// Scratch directory for datasets and backends; wiped on construction.
class BenchDir {
 public:
  explicit BenchDir(const std::string& name) {
    path_ = std::filesystem::temp_directory_path() / ("mm_bench_" + name);
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string Key(const std::string& scheme, const std::string& file,
                  const std::string& frag = "") const {
    std::string k = scheme + "://" + (path_ / file).string();
    if (!frag.empty()) k += ":" + frag;
    return k;
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// One measured configuration: runs `body` `reps` times, returns the mean
/// virtual runtime in seconds. `body` returns the job RunResult.
inline double MeasureSeconds(int reps,
                             const std::function<mm::comm::RunResult()>& body,
                             bool* oom = nullptr) {
  mm::StatAccumulator acc;
  if (oom != nullptr) *oom = false;
  for (int r = 0; r < reps; ++r) {
    auto result = body();
    if (result.oom) {
      if (oom != nullptr) *oom = true;
      return 0.0;
    }
    if (!result.ok()) {
      std::fprintf(stderr, "bench run failed: %s\n", result.error.c_str());
      return 0.0;
    }
    acc.Add(result.max_time);
  }
  return acc.Mean();
}

/// Generates a particle dataset once and returns its key.
inline std::string StageParticles(const BenchDir& dir,
                                  std::uint64_t num_particles, int halos,
                                  std::uint64_t seed,
                                  const std::string& file = "pts.bin",
                                  double box_size = 1000.0) {
  mm::apps::DatagenConfig gen;
  gen.num_particles = num_particles;
  gen.halos = halos;
  gen.seed = seed;
  gen.box_size = box_size;
  // Keep halo density roughly constant as the dataset grows (weak
  // scaling): spread the halos AND their width with the box.
  gen.halo_sigma = 12.0 * box_size / 1000.0;
  std::string key = dir.Key("posix", file);
  auto truth = mm::apps::GenerateToBackend(gen, key);
  if (!truth.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 truth.status().ToString().c_str());
    std::exit(1);
  }
  return key;
}

inline std::string Fmt(double v, int prec = 4) {
  return mm::FormatDouble(v, prec);
}

}  // namespace mmbench
