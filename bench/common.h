// Shared helpers for the figure-reproduction benchmarks: repeated runs with
// averaging (the paper runs each experiment 3 times and reports the
// average), dataset staging, table/CSV output, and scaled-down experiment
// geometry (documented per figure in EXPERIMENTS.md).
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "mm/apps/datagen.h"
#include "mm/mega_mmap.h"
#include "mm/util/stats.h"

namespace mmbench {

/// True when the binary was invoked with --csv.
inline bool CsvMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return true;
  }
  return false;
}

/// Repetitions per configuration (paper: 3).
inline int Reps(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--reps") return std::atoi(argv[i + 1]);
  }
  return 3;
}

/// Scratch directory for datasets and backends; wiped on construction.
class BenchDir {
 public:
  explicit BenchDir(const std::string& name) {
    path_ = std::filesystem::temp_directory_path() / ("mm_bench_" + name);
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string Key(const std::string& scheme, const std::string& file,
                  const std::string& frag = "") const {
    std::string k = scheme + "://" + (path_ / file).string();
    if (!frag.empty()) k += ":" + frag;
    return k;
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// One measured configuration: runs `body` `reps` times, returns the mean
/// virtual runtime in seconds. `body` returns the job RunResult. When
/// `samples` is given the per-rep runtimes are appended to it (for
/// BenchReport percentile series).
inline double MeasureSeconds(int reps,
                             const std::function<mm::comm::RunResult()>& body,
                             bool* oom = nullptr,
                             mm::StatAccumulator* samples = nullptr) {
  mm::StatAccumulator acc;
  if (oom != nullptr) *oom = false;
  for (int r = 0; r < reps; ++r) {
    auto result = body();
    if (result.oom) {
      if (oom != nullptr) *oom = true;
      return 0.0;
    }
    if (!result.ok()) {
      std::fprintf(stderr, "bench run failed: %s\n", result.error.c_str());
      return 0.0;
    }
    acc.Add(result.max_time);
    if (samples != nullptr) samples->Add(result.max_time);
  }
  return acc.Mean();
}

/// Unified BENCH_*.json emission, shared by every benchmark binary and read
/// by ci/check_perf.py. One schema for all reports:
///
///   {
///     "name":    "<benchmark>",
///     "config":  { string or numeric knobs of this run },
///     "metrics": { flat scalar results, e.g. "scalar_ns_per_access": 3.5 },
///     "series":  { "<label>": {"count": n, "mean": m,
///                              "p50": ..., "p95": ..., "p99": ...} }
///   }
///
/// `metrics` carries single numbers (gate targets); `series` carries
/// repeated-run distributions summarized through StatAccumulator's
/// linear-interpolated percentiles.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Config(const std::string& key, const std::string& value) {
    config_.push_back({key, "\"" + Escape(value) + "\""});
  }
  void Config(const std::string& key, double value) {
    config_.push_back({key, Num(value)});
  }
  void Metric(const std::string& key, double value) {
    metrics_.push_back({key, Num(value)});
  }
  void Series(const std::string& key, const mm::StatAccumulator& acc) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %zu, \"mean\": %s, \"p50\": %s, \"p95\": %s, "
                  "\"p99\": %s, \"p999\": %s}",
                  acc.count(), Num(acc.Mean()).c_str(),
                  Num(acc.Percentile(50)).c_str(),
                  Num(acc.Percentile(95)).c_str(),
                  Num(acc.Percentile(99)).c_str(),
                  Num(acc.Percentile(99.9)).c_str());
    series_.push_back({key, buf});
  }

  /// Serializes the report; `path` defaults from argv in the callers.
  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n", Escape(name_).c_str());
    WriteSection(f, "config", config_, /*last=*/false);
    WriteSection(f, "metrics", metrics_, /*last=*/false);
    WriteSection(f, "series", series_, /*last=*/true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string key;
    std::string json;  // pre-rendered value
  };

  static std::string Num(double v) {
    // NaN/inf render as bare words under %g, which is not JSON; a report
    // with a degenerate metric must still parse in check_perf.py.
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static void WriteSection(std::FILE* f, const char* title,
                           const std::vector<Entry>& entries, bool last) {
    std::fprintf(f, "  \"%s\": {", title);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   Escape(entries[i].key).c_str(), entries[i].json.c_str());
    }
    std::fprintf(f, "%s}%s\n", entries.empty() ? "" : "\n  ",
                 last ? "" : ",");
  }

  std::string name_;
  std::vector<Entry> config_;
  std::vector<Entry> metrics_;
  std::vector<Entry> series_;
};

/// Generates a particle dataset once and returns its key.
inline std::string StageParticles(const BenchDir& dir,
                                  std::uint64_t num_particles, int halos,
                                  std::uint64_t seed,
                                  const std::string& file = "pts.bin",
                                  double box_size = 1000.0) {
  mm::apps::DatagenConfig gen;
  gen.num_particles = num_particles;
  gen.halos = halos;
  gen.seed = seed;
  gen.box_size = box_size;
  // Keep halo density roughly constant as the dataset grows (weak
  // scaling): spread the halos AND their width with the box.
  gen.halo_sigma = 12.0 * box_size / 1000.0;
  std::string key = dir.Key("posix", file);
  auto truth = mm::apps::GenerateToBackend(gen, key);
  if (!truth.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 truth.status().ToString().c_str());
    std::exit(1);
  }
  return key;
}

inline std::string Fmt(double v, int prec = 4) {
  return mm::FormatDouble(v, prec);
}

}  // namespace mmbench
