// Read fast-path microbenchmark (DESIGN.md §14): 8 reader threads on node 0
// hammer random pages homed on node 1 and we measure REAL wall-clock
// per-read latency — the one number the virtual clock cannot show, because
// the queue path's cost is host-side machinery (task enqueue, worker
// wake-up, promise/future handoff) that the simulator models as zero.
//
//   queue path      Service::ReadPage            (enable_optimistic_reads off)
//   optimistic path Service::TryReadPageOptimistic, ReadPage on decline
//
// Reported: p50/p99/p999 per path, optimistic hit ratio, retry rate, and
// the self-relative p99 speedup ci/check_perf.py gates (>= 3x at 8 readers,
// hit ratio >= 0.95, retry rate < 0.05).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "mm/mega_mmap.h"
#include "mm/util/hash.h"

namespace {

using mm::MixU64;

constexpr int kReaders = 8;
constexpr int kWarmupOps = 200;  // untimed: thread-pool and allocator warm-up
constexpr int kOpsPerReader = 5000;
constexpr std::uint64_t kPageBytes = 4096;
constexpr std::uint64_t kPages = 64;  // readers touch the node-1 half

struct PathStats {
  std::vector<double> latencies_ns;
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t retries = 0;
};

// One full measurement of a path. `optimistic` selects the per-op call; the
// service is built fresh each time so the two paths see identical state
// (and so the enable_optimistic_reads toggle is exercised for real).
PathStats RunPath(bool optimistic) {
  auto cluster = mm::sim::Cluster::PaperTestbed(2);
  mm::core::ServiceOptions so;
  so.tier_grants = {{mm::sim::TierKind::kDram, mm::MEGABYTES(64)},
                    {mm::sim::TierKind::kNvme, mm::MEGABYTES(256)}};
  so.enable_optimistic_reads = optimistic;
  mm::core::Service svc(cluster.get(), so);

  mm::core::VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = kPageBytes;
  const std::uint64_t elems = kPages * kPageBytes / 8;
  auto meta = svc.RegisterVector("readpath_pages", 8, vo, elems);
  if (!meta.ok()) {
    std::fprintf(stderr, "RegisterVector: %s\n",
                 meta.status().ToString().c_str());
    std::exit(1);
  }
  // Balanced PGAS split over 2 single-rank nodes: the upper half of the
  // pages is homed on node 1, which is what the readers (on node 0) touch —
  // every queue-path read crosses to node 1's worker pool.
  svc.SetPgasHint(**meta, {elems, /*nprocs=*/2, /*ranks_per_node=*/1});

  // Materialize the upper half on its home node once, outside the timers.
  mm::sim::SimTime t = 0.0;
  for (std::uint64_t p = kPages / 2; p < kPages; ++p) {
    auto st = svc.ReadPage(**meta, p, /*from_node=*/1, t, &t);
    if (!st.ok()) {
      std::fprintf(stderr, "placement fault: %s\n",
                   st.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::vector<PathStats> per_thread(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      PathStats& mine = per_thread[r];
      mine.latencies_ns.reserve(kOpsPerReader);
      std::uint64_t rng = MixU64(r + 1);
      mm::sim::SimTime now = 1.0;
      for (int op = -kWarmupOps; op < kOpsPerReader; ++op) {
        rng = MixU64(rng);
        const std::uint64_t page = kPages / 2 + rng % (kPages / 2);
        const auto t0 = std::chrono::steady_clock::now();
        if (optimistic) {
          int op_retries = 0;
          auto fast = svc.TryReadPageOptimistic(**meta, page, /*from_node=*/0,
                                                now, &now, nullptr,
                                                &op_retries);
          mine.retries += op_retries;
          if (fast.has_value()) {
            ++mine.hits;
          } else {
            ++mine.fallbacks;
            // Pre-placed read-only pages: the fallback cannot fail here.
            (void)svc.ReadPage(**meta, page, 0, now, &now, nullptr,
                               /*optimistic_fallback=*/true);
          }
        } else {
          // Same: latency is the measurement, not the (always-ok) status.
          (void)svc.ReadPage(**meta, page, /*from_node=*/0, now, &now);
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (op >= 0) {
          mine.latencies_ns.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        }
      }
    });
  }
  for (auto& th : readers) th.join();

  PathStats total;
  for (const PathStats& s : per_thread) {
    total.latencies_ns.insert(total.latencies_ns.end(),
                              s.latencies_ns.begin(), s.latencies_ns.end());
    total.hits += s.hits;
    total.fallbacks += s.fallbacks;
    total.retries += s.retries;
  }
  return total;
}

// Untimed companion run that emits a Perfetto trace of the cross-node read
// path for ci/validate_trace.py: a handful of remote faults, a write
// commit, and a flush — enough to exercise every flow shape (sync
// page_fault 's', async write_commit 'a', fan-out flush) without touching
// the timed measurements above.
void EmitTrace(const std::string& trace_path) {
  auto cluster = mm::sim::Cluster::PaperTestbed(2);
  mm::core::ServiceOptions so;
  so.tier_grants = {{mm::sim::TierKind::kDram, mm::MEGABYTES(64)},
                    {mm::sim::TierKind::kNvme, mm::MEGABYTES(256)}};
  so.telemetry.trace_path = trace_path;
  {
    mm::core::Service svc(cluster.get(), so);
    mm::core::VectorOptions vo;
    vo.nonvolatile = false;
    vo.page_size = kPageBytes;
    const std::uint64_t elems = kPages * kPageBytes / 8;
    auto meta = svc.RegisterVector("readpath_trace", 8, vo, elems);
    if (!meta.ok()) {
      std::fprintf(stderr, "RegisterVector: %s\n",
                   meta.status().ToString().c_str());
      std::exit(1);
    }
    svc.SetPgasHint(**meta, {elems, /*nprocs=*/2, /*ranks_per_node=*/1});
    mm::sim::SimTime t = 0.0;
    // Home a few pages on node 1, then fault them from node 0: each read is
    // one origin -> remote get_page -> stager flow.
    for (std::uint64_t p = kPages / 2; p < kPages / 2 + 4; ++p) {
      std::vector<std::uint8_t> bytes(kPageBytes, 0x5a);
      auto fut = svc.WriteRegion(**meta, p, 0, std::move(bytes),
                                 /*from_node=*/1, t);
      t = std::max(t, fut.get().done);
    }
    for (std::uint64_t p = kPages / 2; p < kPages / 2 + 4; ++p) {
      // Only the emitted fault flows matter; the data is checked elsewhere.
      (void)svc.ReadPage(**meta, p, /*from_node=*/0, t, &t);
    }
    // Trace is written by the Service destructor (Shutdown).
  }
  std::printf("wrote %s\n", trace_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_readpath.json";
  const bool csv = mmbench::CsvMode(argc, argv);
  std::string trace_path;  // --trace <path>: untimed trace-emission run
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  if (!trace_path.empty()) EmitTrace(trace_path);

  PathStats queue = RunPath(/*optimistic=*/false);
  PathStats fast = RunPath(/*optimistic=*/true);

  mm::StatAccumulator queue_ns, fast_ns;
  for (double v : queue.latencies_ns) queue_ns.Add(v);
  for (double v : fast.latencies_ns) fast_ns.Add(v);

  const double attempts = static_cast<double>(fast.hits + fast.fallbacks);
  const double hit_ratio = attempts > 0 ? fast.hits / attempts : 0.0;
  const double retry_rate = attempts > 0 ? fast.retries / attempts : 0.0;
  const double p99_speedup = fast_ns.Percentile(99) > 0
                                 ? queue_ns.Percentile(99) /
                                       fast_ns.Percentile(99)
                                 : 0.0;

  mm::TablePrinter table({"path", "p50_ns", "p99_ns", "p999_ns", "mean_ns"});
  table.AddRow({"queue", mmbench::Fmt(queue_ns.Percentile(50), 0),
                mmbench::Fmt(queue_ns.Percentile(99), 0),
                mmbench::Fmt(queue_ns.Percentile(99.9), 0),
                mmbench::Fmt(queue_ns.Mean(), 0)});
  table.AddRow({"optimistic", mmbench::Fmt(fast_ns.Percentile(50), 0),
                mmbench::Fmt(fast_ns.Percentile(99), 0),
                mmbench::Fmt(fast_ns.Percentile(99.9), 0),
                mmbench::Fmt(fast_ns.Mean(), 0)});
  std::printf("%s", table.Render(csv).c_str());
  std::printf("hit_ratio=%.4f retry_rate=%.4f p99_speedup=%.2fx\n", hit_ratio,
              retry_rate, p99_speedup);

  mmbench::BenchReport report("readpath");
  report.Config("readers", kReaders);
  report.Config("ops_per_reader", kOpsPerReader);
  report.Config("page_bytes", static_cast<double>(kPageBytes));
  report.Config("pages", static_cast<double>(kPages));
  report.Metric("hit_ratio", hit_ratio);
  report.Metric("retry_rate", retry_rate);
  report.Metric("p99_speedup", p99_speedup);
  report.Metric("queue_p99_ns", queue_ns.Percentile(99));
  report.Metric("optimistic_p99_ns", fast_ns.Percentile(99));
  report.Series("queue_ns", queue_ns);
  report.Series("optimistic_ns", fast_ns);
  if (!report.Write(out_path)) return 1;
  return 0;
}
