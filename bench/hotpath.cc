// Hot-path perf smoke: machine-readable numbers for the three layers of
// the access fast path.
//
//  1. ns/access of the scalar faulting path (Vector::Read) vs the pinned
//     span path (Vector::ReadSpan) over a fully resident vector;
//  2. eviction throughput under 10x capacity pressure at two resident-frame
//     counts — with the intrusive LRU lists the per-eviction cost must be
//     flat (independent of frame count), so the ratio stays near 1;
//  3. task-payload allocations per page fault — the page-buffer pool must
//     recycle nearly every buffer once warm.
//
//  4. telemetry overhead — the same access loops with the trace recorder
//     runtime-enabled; the metrics/trace hooks must stay off the per-element
//     fast path, so the delta has to sit inside measurement noise (<2%,
//     gated by ci/check_perf.py with an absolute noise floor).
//
// Output: BENCH_hotpath.json (or argv[1]). CI's perf-smoke job compares
// scalar/span ns-per-access against bench/BENCH_hotpath_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>

#include "bench/common.h"
#include "mm/mega_mmap.h"

namespace {

using namespace mm;
using WallClock = std::chrono::steady_clock;

double ElapsedNs(WallClock::time_point t0, WallClock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// One single-rank simulated world (the shape every microbench uses).
/// `trace` additionally runtime-enables the trace recorder, the costliest
/// telemetry mode (metrics counters are always on).
struct Env {
  explicit Env(std::uint64_t dram_bytes, bool trace = false) {
    cluster = sim::Cluster::PaperTestbed(1);
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, dram_bytes}};
    so.enable_prefetch = false;
    if (trace) so.telemetry.trace_path = "/tmp/mm_hotpath_trace.json";
    service = std::make_unique<core::Service>(cluster.get(), so);
    world = std::make_unique<comm::World>(cluster.get(), 1, 1);
    ctx = std::make_unique<comm::RankContext>(world.get(), 0);
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<core::Service> service;
  std::unique_ptr<comm::World> world;
  std::unique_ptr<comm::RankContext> ctx;
};

struct AccessResult {
  double baseline_ns = 0;  // raw std::vector, same loop shape
  double scalar_ns = 0;
  double span_ns = 0;
  double scalar_overhead_ns = 0;  // scalar_ns - baseline_ns
  double span_overhead_ns = 0;    // span_ns - baseline_ns
};

/// Scalar vs span ns/access over a resident vector; best of `kReps`.
/// Every loop uses 4-way accumulators so the FP-add latency chain does not
/// mask the access cost, and a raw std::vector baseline with the identical
/// shape isolates the mm overhead from the sum itself.
AccessResult MeasureAccess(bool trace = false) {
  constexpr std::uint64_t kN = 1 << 20;
  constexpr int kReps = 5;
  Env env(MEGABYTES(256), trace);
  core::VectorOptions vo;
  vo.pcache_bytes = MEGABYTES(64);
  vo.nonvolatile = false;
  Vector<double> vec(*env.service, *env.ctx, "hot_access", kN, vo);
  {
    auto tx = vec.SeqTxBegin(0, kN, core::MM_WRITE_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < kN; b += chunk) {
      std::uint64_t e = std::min(kN, b + chunk);
      auto span = vec.WriteSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) span[i] = double(i);
    }
    vec.TxEnd();
  }

  AccessResult r;
  r.baseline_ns = 1e300;
  r.scalar_ns = 1e300;
  r.span_ns = 1e300;
  volatile double sink = 0;

  std::vector<double> raw(kN);
  for (std::uint64_t i = 0; i < kN; ++i) raw[i] = double(i);
  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t i = 0; i + 4 <= kN; i += 4) {
      s0 += raw[i];
      s1 += raw[i + 1];
      s2 += raw[i + 2];
      s3 += raw[i + 3];
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.baseline_ns = std::min(r.baseline_ns, ElapsedNs(t0, t1) / double(kN));
  }

  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t i = 0; i + 4 <= kN; i += 4) {
      s0 += vec.Read(i);
      s1 += vec.Read(i + 1);
      s2 += vec.Read(i + 2);
      s3 += vec.Read(i + 3);
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.scalar_ns = std::min(r.scalar_ns, ElapsedNs(t0, t1) / double(kN));
  }

  const std::uint64_t chunk = vec.MaxSpanElems() & ~std::uint64_t{3};
  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t b = 0; b < kN; b += chunk) {
      std::uint64_t e = std::min(kN, b + chunk);
      auto span = vec.ReadSpan(b, e);
      for (std::uint64_t i = b; i + 4 <= e; i += 4) {
        s0 += span[i];
        s1 += span[i + 1];
        s2 += span[i + 2];
        s3 += span[i + 3];
      }
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.span_ns = std::min(r.span_ns, ElapsedNs(t0, t1) / double(kN));
  }
  r.scalar_overhead_ns = r.scalar_ns - r.baseline_ns;
  r.span_overhead_ns = r.span_ns - r.baseline_ns;
  return r;
}

struct EvictResult {
  std::uint64_t resident_frames = 0;
  std::uint64_t evictions = 0;
  double ns_per_eviction = 0;
  double evictions_per_sec = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t faults = 0;
};

/// Sequential sweep over a dataset 10x the pcache: every page fault must
/// evict one resident frame. `cache_pages` scales the resident-frame count
/// while pressure stays fixed — O(1) eviction keeps ns/eviction flat.
EvictResult MeasureEvict(std::uint64_t cache_pages) {
  constexpr std::uint64_t kPageBytes = 4096;
  constexpr std::uint64_t kElemsPerPage = kPageBytes / sizeof(double);
  const std::uint64_t data_pages = cache_pages * 10;
  const std::uint64_t n = data_pages * kElemsPerPage;
  Env env(MEGABYTES(512));
  core::VectorOptions vo;
  vo.page_size = kPageBytes;
  vo.pcache_bytes = cache_pages * kPageBytes;
  vo.nonvolatile = false;
  Vector<double> vec(*env.service, *env.ctx, "hot_evict", n, vo);
  {
    auto tx = vec.SeqTxBegin(0, n, core::MM_WRITE_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < n; b += chunk) {
      std::uint64_t e = std::min(n, b + chunk);
      auto span = vec.WriteSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) span[i] = double(i);
    }
    vec.TxEnd();
  }

  EvictResult r;
  r.resident_frames = cache_pages;
  std::uint64_t ev0 = vec.evictions();
  std::uint64_t faults0 = vec.faults();
  std::uint64_t alloc0 = env.service->runtime(0).pool().allocations();
  std::uint64_t reuse0 = env.service->runtime(0).pool().reuses();
  constexpr int kPasses = 3;
  volatile double sink = 0;
  auto t0 = WallClock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    double sum = 0;
    auto tx = vec.SeqTxBegin(0, n, core::MM_READ_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < n; b += chunk) {
      std::uint64_t e = std::min(n, b + chunk);
      auto span = vec.ReadSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) sum += span[i];
    }
    vec.TxEnd();
    sink = sink + sum;
  }
  auto t1 = WallClock::now();
  r.evictions = vec.evictions() - ev0;
  r.faults = vec.faults() - faults0;
  r.pool_allocs = env.service->runtime(0).pool().allocations() - alloc0;
  r.pool_reuses = env.service->runtime(0).pool().reuses() - reuse0;
  double total_ns = ElapsedNs(t0, t1);
  if (r.evictions > 0) {
    r.ns_per_eviction = total_ns / double(r.evictions);
    r.evictions_per_sec = double(r.evictions) / (total_ns * 1e-9);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  AccessResult access = MeasureAccess();
  AccessResult traced = MeasureAccess(/*trace=*/true);
  EvictResult small = MeasureEvict(/*cache_pages=*/64);
  EvictResult large = MeasureEvict(/*cache_pages=*/512);

  // Per-element *overhead* ratio: mm cost above the raw-array floor.
  double speedup = access.span_overhead_ns > 0
                       ? access.scalar_overhead_ns / access.span_overhead_ns
                       : 0;
  // Flatness of per-eviction cost across an 8x resident-frame spread; the
  // old full-scan victim search would push this toward 8.
  double flatness = small.ns_per_eviction > 0
                        ? large.ns_per_eviction / small.ns_per_eviction
                        : 0;
  std::uint64_t ops = large.faults;
  double allocs_per_op =
      ops > 0 ? double(large.pool_allocs) / double(ops) : 0;
  // Worst per-access cost added by runtime-enabled tracing, across both
  // access paths. The hooks live at frame resolution, so this must be
  // indistinguishable from noise.
  double telemetry_overhead_ns =
      std::max({0.0, traced.scalar_ns - access.scalar_ns,
                traced.span_ns - access.span_ns});

  mmbench::BenchReport report("hotpath");
  report.Config("elements", double(1 << 20));
  report.Config("access_reps", 5);
  report.Config("evict_passes", 3);
  report.Metric("baseline_ns_per_access", access.baseline_ns);
  report.Metric("scalar_ns_per_access", access.scalar_ns);
  report.Metric("span_ns_per_access", access.span_ns);
  report.Metric("scalar_overhead_ns", access.scalar_overhead_ns);
  report.Metric("span_overhead_ns", access.span_overhead_ns);
  report.Metric("span_speedup", speedup);
  report.Metric("telemetry_scalar_ns_per_access", traced.scalar_ns);
  report.Metric("telemetry_span_ns_per_access", traced.span_ns);
  report.Metric("telemetry_overhead_ns", telemetry_overhead_ns);
  report.Metric("evict_small_resident_frames", double(small.resident_frames));
  report.Metric("evict_small_evictions", double(small.evictions));
  report.Metric("evict_small_ns_per_eviction", small.ns_per_eviction);
  report.Metric("evict_small_evictions_per_sec", small.evictions_per_sec);
  report.Metric("evict_large_resident_frames", double(large.resident_frames));
  report.Metric("evict_large_evictions", double(large.evictions));
  report.Metric("evict_large_ns_per_eviction", large.ns_per_eviction);
  report.Metric("evict_large_evictions_per_sec", large.evictions_per_sec);
  report.Metric("eviction_cost_flatness", flatness);
  report.Metric("task_allocs", double(large.pool_allocs));
  report.Metric("task_reuses", double(large.pool_reuses));
  report.Metric("task_allocs_per_op", allocs_per_op);
  if (!report.Write(out_path)) return 1;

  std::printf(
      "baseline %.2f, scalar %.2f, span %.2f ns/access "
      "(overhead %.2f vs %.2f ns: %.1fx)\n",
      access.baseline_ns, access.scalar_ns, access.span_ns,
      access.scalar_overhead_ns, access.span_overhead_ns, speedup);
  std::printf("with trace enabled: scalar %.2f, span %.2f ns/access "
              "(telemetry overhead %.3f ns)\n",
              traced.scalar_ns, traced.span_ns, telemetry_overhead_ns);
  std::printf("evictions/sec: %.0f @%llu frames, %.0f @%llu frames "
              "(flatness %.2f)\n",
              small.evictions_per_sec,
              (unsigned long long)small.resident_frames,
              large.evictions_per_sec,
              (unsigned long long)large.resident_frames, flatness);
  std::printf("task allocs/op %.4f (%llu allocs, %llu reuses)\n",
              allocs_per_op, (unsigned long long)large.pool_allocs,
              (unsigned long long)large.pool_reuses);
  return 0;
}
