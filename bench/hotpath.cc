// Hot-path perf smoke: machine-readable numbers for the three layers of
// the access fast path.
//
//  1. ns/access of the scalar faulting path (Vector::Read) vs the pinned
//     span path (Vector::ReadSpan) over a fully resident vector;
//  2. eviction throughput under 10x capacity pressure at two resident-frame
//     counts — with the intrusive LRU lists the per-eviction cost must be
//     flat (independent of frame count), so the ratio stays near 1;
//  3. task-payload allocations per page fault — the page-buffer pool must
//     recycle nearly every buffer once warm.
//
// Output: BENCH_hotpath.json (or argv[1]). CI's perf-smoke job compares
// scalar/span ns-per-access against bench/BENCH_hotpath_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>

#include "mm/mega_mmap.h"

namespace {

using namespace mm;
using WallClock = std::chrono::steady_clock;

double ElapsedNs(WallClock::time_point t0, WallClock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// One single-rank simulated world (the shape every microbench uses).
struct Env {
  explicit Env(std::uint64_t dram_bytes) {
    cluster = sim::Cluster::PaperTestbed(1);
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, dram_bytes}};
    so.enable_prefetch = false;
    service = std::make_unique<core::Service>(cluster.get(), so);
    world = std::make_unique<comm::World>(cluster.get(), 1, 1);
    ctx = std::make_unique<comm::RankContext>(world.get(), 0);
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<core::Service> service;
  std::unique_ptr<comm::World> world;
  std::unique_ptr<comm::RankContext> ctx;
};

struct AccessResult {
  double baseline_ns = 0;  // raw std::vector, same loop shape
  double scalar_ns = 0;
  double span_ns = 0;
  double scalar_overhead_ns = 0;  // scalar_ns - baseline_ns
  double span_overhead_ns = 0;    // span_ns - baseline_ns
};

/// Scalar vs span ns/access over a resident vector; best of `kReps`.
/// Every loop uses 4-way accumulators so the FP-add latency chain does not
/// mask the access cost, and a raw std::vector baseline with the identical
/// shape isolates the mm overhead from the sum itself.
AccessResult MeasureAccess() {
  constexpr std::uint64_t kN = 1 << 20;
  constexpr int kReps = 5;
  Env env(MEGABYTES(256));
  core::VectorOptions vo;
  vo.pcache_bytes = MEGABYTES(64);
  vo.nonvolatile = false;
  Vector<double> vec(*env.service, *env.ctx, "hot_access", kN, vo);
  {
    auto tx = vec.SeqTxBegin(0, kN, core::MM_WRITE_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < kN; b += chunk) {
      std::uint64_t e = std::min(kN, b + chunk);
      auto span = vec.WriteSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) span[i] = double(i);
    }
    vec.TxEnd();
  }

  AccessResult r;
  r.baseline_ns = 1e300;
  r.scalar_ns = 1e300;
  r.span_ns = 1e300;
  volatile double sink = 0;

  std::vector<double> raw(kN);
  for (std::uint64_t i = 0; i < kN; ++i) raw[i] = double(i);
  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t i = 0; i + 4 <= kN; i += 4) {
      s0 += raw[i];
      s1 += raw[i + 1];
      s2 += raw[i + 2];
      s3 += raw[i + 3];
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.baseline_ns = std::min(r.baseline_ns, ElapsedNs(t0, t1) / double(kN));
  }

  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t i = 0; i + 4 <= kN; i += 4) {
      s0 += vec.Read(i);
      s1 += vec.Read(i + 1);
      s2 += vec.Read(i + 2);
      s3 += vec.Read(i + 3);
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.scalar_ns = std::min(r.scalar_ns, ElapsedNs(t0, t1) / double(kN));
  }

  const std::uint64_t chunk = vec.MaxSpanElems() & ~std::uint64_t{3};
  for (int rep = 0; rep < kReps; ++rep) {
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    auto t0 = WallClock::now();
    for (std::uint64_t b = 0; b < kN; b += chunk) {
      std::uint64_t e = std::min(kN, b + chunk);
      auto span = vec.ReadSpan(b, e);
      for (std::uint64_t i = b; i + 4 <= e; i += 4) {
        s0 += span[i];
        s1 += span[i + 1];
        s2 += span[i + 2];
        s3 += span[i + 3];
      }
    }
    auto t1 = WallClock::now();
    sink = sink + s0 + s1 + s2 + s3;
    r.span_ns = std::min(r.span_ns, ElapsedNs(t0, t1) / double(kN));
  }
  r.scalar_overhead_ns = r.scalar_ns - r.baseline_ns;
  r.span_overhead_ns = r.span_ns - r.baseline_ns;
  return r;
}

struct EvictResult {
  std::uint64_t resident_frames = 0;
  std::uint64_t evictions = 0;
  double ns_per_eviction = 0;
  double evictions_per_sec = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t faults = 0;
};

/// Sequential sweep over a dataset 10x the pcache: every page fault must
/// evict one resident frame. `cache_pages` scales the resident-frame count
/// while pressure stays fixed — O(1) eviction keeps ns/eviction flat.
EvictResult MeasureEvict(std::uint64_t cache_pages) {
  constexpr std::uint64_t kPageBytes = 4096;
  constexpr std::uint64_t kElemsPerPage = kPageBytes / sizeof(double);
  const std::uint64_t data_pages = cache_pages * 10;
  const std::uint64_t n = data_pages * kElemsPerPage;
  Env env(MEGABYTES(512));
  core::VectorOptions vo;
  vo.page_size = kPageBytes;
  vo.pcache_bytes = cache_pages * kPageBytes;
  vo.nonvolatile = false;
  Vector<double> vec(*env.service, *env.ctx, "hot_evict", n, vo);
  {
    auto tx = vec.SeqTxBegin(0, n, core::MM_WRITE_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < n; b += chunk) {
      std::uint64_t e = std::min(n, b + chunk);
      auto span = vec.WriteSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) span[i] = double(i);
    }
    vec.TxEnd();
  }

  EvictResult r;
  r.resident_frames = cache_pages;
  std::uint64_t ev0 = vec.evictions();
  std::uint64_t faults0 = vec.faults();
  std::uint64_t alloc0 = env.service->runtime(0).pool().allocations();
  std::uint64_t reuse0 = env.service->runtime(0).pool().reuses();
  constexpr int kPasses = 3;
  volatile double sink = 0;
  auto t0 = WallClock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    double sum = 0;
    auto tx = vec.SeqTxBegin(0, n, core::MM_READ_ONLY);
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t b = 0; b < n; b += chunk) {
      std::uint64_t e = std::min(n, b + chunk);
      auto span = vec.ReadSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) sum += span[i];
    }
    vec.TxEnd();
    sink = sink + sum;
  }
  auto t1 = WallClock::now();
  r.evictions = vec.evictions() - ev0;
  r.faults = vec.faults() - faults0;
  r.pool_allocs = env.service->runtime(0).pool().allocations() - alloc0;
  r.pool_reuses = env.service->runtime(0).pool().reuses() - reuse0;
  double total_ns = ElapsedNs(t0, t1);
  if (r.evictions > 0) {
    r.ns_per_eviction = total_ns / double(r.evictions);
    r.evictions_per_sec = double(r.evictions) / (total_ns * 1e-9);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  AccessResult access = MeasureAccess();
  EvictResult small = MeasureEvict(/*cache_pages=*/64);
  EvictResult large = MeasureEvict(/*cache_pages=*/512);

  // Per-element *overhead* ratio: mm cost above the raw-array floor.
  double speedup = access.span_overhead_ns > 0
                       ? access.scalar_overhead_ns / access.span_overhead_ns
                       : 0;
  // Flatness of per-eviction cost across an 8x resident-frame spread; the
  // old full-scan victim search would push this toward 8.
  double flatness = small.ns_per_eviction > 0
                        ? large.ns_per_eviction / small.ns_per_eviction
                        : 0;
  std::uint64_t ops = large.faults;
  double allocs_per_op =
      ops > 0 ? double(large.pool_allocs) / double(ops) : 0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"baseline_ns_per_access\": %.3f,\n", access.baseline_ns);
  std::fprintf(f, "  \"scalar_ns_per_access\": %.3f,\n", access.scalar_ns);
  std::fprintf(f, "  \"span_ns_per_access\": %.3f,\n", access.span_ns);
  std::fprintf(f, "  \"scalar_overhead_ns\": %.3f,\n",
               access.scalar_overhead_ns);
  std::fprintf(f, "  \"span_overhead_ns\": %.3f,\n", access.span_overhead_ns);
  std::fprintf(f, "  \"span_speedup\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"evict_small\": {\"resident_frames\": %llu, \"evictions\": "
               "%llu, \"ns_per_eviction\": %.1f, \"evictions_per_sec\": "
               "%.0f},\n",
               (unsigned long long)small.resident_frames,
               (unsigned long long)small.evictions, small.ns_per_eviction,
               small.evictions_per_sec);
  std::fprintf(f,
               "  \"evict_large\": {\"resident_frames\": %llu, \"evictions\": "
               "%llu, \"ns_per_eviction\": %.1f, \"evictions_per_sec\": "
               "%.0f},\n",
               (unsigned long long)large.resident_frames,
               (unsigned long long)large.evictions, large.ns_per_eviction,
               large.evictions_per_sec);
  std::fprintf(f, "  \"eviction_cost_flatness\": %.3f,\n", flatness);
  std::fprintf(f, "  \"task_allocs\": %llu,\n",
               (unsigned long long)large.pool_allocs);
  std::fprintf(f, "  \"task_reuses\": %llu,\n",
               (unsigned long long)large.pool_reuses);
  std::fprintf(f, "  \"task_allocs_per_op\": %.4f\n", allocs_per_op);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "baseline %.2f, scalar %.2f, span %.2f ns/access "
      "(overhead %.2f vs %.2f ns: %.1fx)\n",
      access.baseline_ns, access.scalar_ns, access.span_ns,
      access.scalar_overhead_ns, access.span_overhead_ns, speedup);
  std::printf("evictions/sec: %.0f @%llu frames, %.0f @%llu frames "
              "(flatness %.2f)\n",
              small.evictions_per_sec,
              (unsigned long long)small.resident_frames,
              large.evictions_per_sec,
              (unsigned long long)large.resident_frames, flatness);
  std::printf("task allocs/op %.4f (%llu allocs, %llu reuses)\n",
              allocs_per_op, (unsigned long long)large.pool_allocs,
              (unsigned long long)large.pool_reuses);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
