// Fault-tolerance experiment (robustness PR): KMeans over a tiered DSM
// while the fault injector exercises the recovery machinery. Three
// configurations of the same single-node run:
//
//   baseline        — no faults;
//   transient       — 10% of NVMe ops fail with kIoError and are absorbed
//                     by retry/backoff (charged to the virtual clock);
//   nvme_death      — the NVMe tier permanently fails mid-run; the scache
//                     degrades to DRAM and clean pages re-stage from PFS.
//
// Reported: mean virtual runtime, recovery overhead vs the baseline, the
// injector's fault counters, and whether the answer stayed byte-identical
// (it must: the dataset is read-only, so no fault can lose dirty state).
#include "bench/common.h"

#include <cstring>

#include "mm/apps/kmeans.h"

using namespace mm;
using namespace mmbench;

namespace {

struct RunStats {
  double runtime_s = 0;
  std::uint64_t transients = 0;
  std::uint64_t spikes = 0;
  std::uint64_t permanents = 0;
  std::size_t data_loss = 0;
  apps::KMeansResult result;
};

bool SameAnswer(const apps::KMeansResult& a, const apps::KMeansResult& b) {
  return a.centroids.size() == b.centroids.size() &&
         std::memcmp(a.centroids.data(), b.centroids.data(),
                     a.centroids.size() * sizeof(apps::Point3)) == 0 &&
         std::memcmp(&a.inertia, &b.inertia, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  BenchDir dir("fault_tolerance");
  std::string key = StageParticles(dir, 60000, 8, 42);

  apps::KMeansConfig cfg;
  cfg.k = 8;
  cfg.max_iter = 6;
  cfg.seed = 5;
  cfg.page_size = 64 * 1024;
  cfg.pcache_bytes = 256 * 1024;

  auto run = [&](const sim::FaultConfig& faults, int max_attempts) {
    RunStats stats;
    StatAccumulator acc;
    for (int r = 0; r < reps; ++r) {
      auto cluster = sim::Cluster::PaperTestbed(1);
      core::ServiceOptions so;
      // A small DRAM slice over a large NVMe slice: most of the ~1.4 MiB
      // dataset lives on NVMe, where the fault plans aim.
      so.tier_grants = {{sim::TierKind::kDram, 256 * 1024},
                        {sim::TierKind::kNvme, MEGABYTES(64)}};
      so.faults = faults;
      so.retry.max_attempts = max_attempts;
      core::Service svc(cluster.get(), so);
      auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
        comm::Communicator comm(&ctx);
        stats.result = apps::KMeansMega(svc, comm, key, cfg);
      });
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n", result.error.c_str());
        std::exit(1);
      }
      acc.Add(result.max_time);
      stats.transients = svc.fault_injector().transient_faults();
      stats.spikes = svc.fault_injector().latency_spikes();
      stats.permanents = svc.fault_injector().permanent_failures();
      stats.data_loss = svc.data_loss_count();
    }
    stats.runtime_s = acc.Mean();
    return stats;
  };

  std::printf("=== Fault tolerance: KMeans under injected NVMe faults ===\n\n");

  sim::FaultConfig none;

  sim::FaultConfig transient;
  transient.seed = 1234;
  transient.tier(sim::TierKind::kNvme).transient_error_rate = 0.10;
  transient.tier(sim::TierKind::kNvme).latency_spike_rate = 0.01;

  sim::FaultConfig death;
  death.tier(sim::TierKind::kNvme).fail_after_ops = 100;

  RunStats base = run(none, 4);
  RunStats flaky = run(transient, 6);
  RunStats dead = run(death, 4);

  TablePrinter table({"config", "runtime_s", "overhead", "transients",
                      "spikes", "tier_deaths", "data_loss", "same_answer"});
  auto add = [&](const char* name, const RunStats& s) {
    table.AddRow({name, Fmt(s.runtime_s),
                  Fmt(s.runtime_s / base.runtime_s, 3) + "x",
                  std::to_string(s.transients), std::to_string(s.spikes),
                  std::to_string(s.permanents), std::to_string(s.data_loss),
                  SameAnswer(base.result, s.result) ? "yes" : "NO"});
  };
  add("baseline", base);
  add("transient_10pct", flaky);
  add("nvme_death", dead);
  std::printf("%s", table.Render(csv).c_str());
  std::printf(
      "\nExpected: both fault configurations finish with the baseline's\n"
      "exact answer. Transient faults cost retries plus backoff on the\n"
      "virtual clock; the tier death costs a recovery burst (backend\n"
      "re-stages) and a degraded steady state (DRAM-only scache).\n");
  return 0;
}
