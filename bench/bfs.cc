// Graph500-style BFS benchmark: R-MAT graph in a CSR spread over two
// MegaMmap vectors, level-synchronous traversal across ranks, TEPS on the
// virtual clock. The irregular, read-only page touches are the optimistic
// read path's home turf; correctness is gated hard — the traversal must
// match the in-memory reference depth-for-depth (bfs_identical).
#include <cstdio>

#include "bench/common.h"
#include "mm/apps/bfs.h"
#include "mm/mega_mmap.h"

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_bfs.json";
  const bool csv = mmbench::CsvMode(argc, argv);
  const int reps = mmbench::Reps(argc, argv);

  mm::apps::RmatConfig rmat;
  rmat.scale = 12;        // 4096 vertices
  rmat.edge_factor = 16;  // 65536 directed R-MAT edges
  rmat.seed = 7;
  auto edges = mm::apps::GenerateRmat(rmat);
  const std::uint64_t n = 1ULL << rmat.scale;
  mm::apps::Csr csr = mm::apps::BuildCsr(edges, n);
  auto want = mm::apps::ReferenceBfs(csr, 0);

  const int nodes = 4;
  mm::apps::BfsConfig cfg;
  cfg.source = 0;
  cfg.page_size = 4096;
  // Cache bound well under the CSR footprint so the kernel actually pages.
  cfg.pcache_bytes = 64 * 1024;

  mm::StatAccumulator teps_acc, sim_s_acc, faults_acc;
  bool identical = true;
  for (int rep = 0; rep < reps; ++rep) {
    auto cluster = mm::sim::Cluster::PaperTestbed(nodes);
    mm::core::ServiceOptions so;
    so.tier_grants = {{mm::sim::TierKind::kDram, mm::MEGABYTES(16)},
                      {mm::sim::TierKind::kNvme, mm::MEGABYTES(64)}};
    mm::core::Service svc(cluster.get(), so);
    mm::apps::BfsResult result;
    auto run = mm::comm::RunRanks(
        *cluster, nodes, /*ranks_per_node=*/1, [&](mm::comm::RankContext& ctx) {
          mm::comm::Communicator comm(&ctx);
          mm::apps::BfsResult r = mm::apps::MegaBfs(svc, comm, csr, cfg);
          if (comm.rank() == 0) result = std::move(r);
        });
    if (!run.ok()) {
      std::fprintf(stderr, "bfs run failed: %s\n", run.error.c_str());
      return 1;
    }
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (result.depth[v] != want[v]) identical = false;
    }
    teps_acc.Add(result.teps);
    sim_s_acc.Add(result.sim_seconds);
    faults_acc.Add(static_cast<double>(result.faults));
  }

  mm::TablePrinter table({"nodes", "scale", "edges", "teps", "sim_s",
                          "faults", "identical"});
  table.AddRow({std::to_string(nodes), std::to_string(rmat.scale),
                std::to_string(csr.cols.size()), mmbench::Fmt(teps_acc.Mean()),
                mmbench::Fmt(sim_s_acc.Mean()),
                mmbench::Fmt(faults_acc.Mean(), 0), identical ? "yes" : "NO"});
  std::printf("%s", table.Render(csv).c_str());

  mmbench::BenchReport report("bfs");
  report.Config("nodes", nodes);
  report.Config("scale", rmat.scale);
  report.Config("edge_factor", rmat.edge_factor);
  report.Config("page_bytes", static_cast<double>(cfg.page_size));
  report.Config("pcache_bytes", static_cast<double>(cfg.pcache_bytes));
  report.Metric("bfs_identical", identical ? 1.0 : 0.0);
  report.Metric("teps", teps_acc.Mean());
  report.Metric("sim_seconds", sim_s_acc.Mean());
  report.Metric("faults", faults_acc.Mean());
  report.Series("teps", teps_acc);
  if (!report.Write(out_path)) return 1;
  return identical ? 0 : 1;
}
