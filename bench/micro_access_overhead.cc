// §III-E microbenchmark: "reading from MegaMmap vectors adds two integer
// operations and a conditional statement as overhead to a typical memory
// access ... this overhead is minor (~5%) ... in an iterative workload that
// multiplies a matrix by a scalar."
//
// Two views of the claim:
//  * virtual: the modeled per-access overhead constant vs the modeled
//    memory access (reported as a metric);
//  * real: wall-clock ns/element of the scalar-multiply loop over
//    mm::Vector's cached fast path vs std::vector.
//
// Plain executable on the shared BenchReport schema
// (BENCH_micro_access_overhead.json): per-loop ns/element series with
// p50/p99 across --reps runs.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "mm/mega_mmap.h"

namespace {

using namespace mm;

volatile double g_sink = 0.0;

struct Fixture {
  Fixture() {
    cluster = sim::Cluster::PaperTestbed(1);
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)}};
    so.enable_prefetch = false;
    service = std::make_unique<core::Service>(cluster.get(), so);
    world = std::make_unique<comm::World>(cluster.get(), 1, 1);
    ctx = std::make_unique<comm::RankContext>(world.get(), 0);
    core::VectorOptions vo;
    vo.pcache_bytes = MEGABYTES(32);
    vo.nonvolatile = false;
    vec = std::make_unique<Vector<double>>(*service, *ctx, "bench_matrix", kN,
                                           vo);
    // Materialize all pages up front (the benchmark measures the fast
    // path, not faults).
    auto tx = vec->SeqTxBegin(0, kN, core::MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < kN; ++i) (*vec)[i] = double(i);
    vec->TxEnd();
  }

  static constexpr std::uint64_t kN = 1 << 20;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<core::Service> service;
  std::unique_ptr<comm::World> world;
  std::unique_ptr<comm::RankContext> ctx;
  std::unique_ptr<Vector<double>> vec;
};

/// Wall-clock ns per element of one pass of `body` over kN elements.
double TimeNsPerElem(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(Fixture::kN);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 && argv[1][0] != '-'
                                   ? argv[1]
                                   : "BENCH_micro_access_overhead.json";
  const bool csv = mmbench::CsvMode(argc, argv);
  const int reps = mmbench::Reps(argc, argv);

  Fixture f;
  std::vector<double> plain(Fixture::kN);
  for (std::uint64_t i = 0; i < Fixture::kN; ++i) plain[i] = double(i);

  struct Loop {
    const char* name;
    std::function<void()> body;
  };
  const std::vector<Loop> loops = {
      {"std_vector_multiply",
       [&] {
         double s = 1.0000001;
         for (std::uint64_t i = 0; i < Fixture::kN; ++i) plain[i] *= s;
         g_sink = plain[Fixture::kN - 1];
       }},
      {"mm_element_multiply",
       [&] {
         double s = 1.0000001;
         auto tx = f.vec->SeqTxBegin(0, Fixture::kN, core::MM_READ_WRITE);
         for (std::uint64_t i = 0; i < Fixture::kN; ++i) (*f.vec)[i] *= s;
         f.vec->TxEnd();
       }},
      // The span fast path: pages resolved and pinned once per window,
      // element access is pointer arithmetic.
      {"mm_span_multiply",
       [&] {
         double s = 1.0000001;
         auto tx = f.vec->SeqTxBegin(0, Fixture::kN, core::MM_READ_WRITE);
         const std::uint64_t chunk = f.vec->MaxSpanElems();
         for (std::uint64_t b = 0; b < Fixture::kN; b += chunk) {
           std::uint64_t e = std::min(Fixture::kN, b + chunk);
           auto span = f.vec->WriteSpan(b, e);
           for (std::uint64_t i = b; i < e; ++i) span[i] *= s;
         }
         f.vec->TxEnd();
       }},
      // Read-only span sweep (the Listing 1 inner-loop shape).
      {"mm_span_read",
       [&] {
         double sum = 0;
         const std::uint64_t chunk = f.vec->MaxSpanElems();
         for (std::uint64_t b = 0; b < Fixture::kN; b += chunk) {
           std::uint64_t e = std::min(Fixture::kN, b + chunk);
           auto span = f.vec->ReadSpan(b, e);
           for (std::uint64_t i = b; i < e; ++i) sum += span[i];
         }
         g_sink = sum;
       }},
      // The raw cached-access fast path without transaction bookkeeping.
      {"mm_read_fast_path",
       [&] {
         double sum = 0;
         for (std::uint64_t i = 0; i < Fixture::kN; ++i) sum += f.vec->Read(i);
         g_sink = sum;
       }},
  };

  mmbench::BenchReport report("micro_access_overhead");
  report.Config("elements", static_cast<double>(Fixture::kN));
  report.Config("reps", reps);
  mm::TablePrinter table({"loop", "ns_per_elem"});
  double std_mean = 0.0, mm_elem_mean = 0.0;
  for (const Loop& loop : loops) {
    loop.body();  // warm-up pass (page pins, icache)
    mm::StatAccumulator ns;
    for (int r = 0; r < reps; ++r) ns.Add(TimeNsPerElem(loop.body));
    table.AddRow({loop.name, mmbench::Fmt(ns.Mean())});
    report.Metric(std::string(loop.name) + "_ns_per_elem", ns.Mean());
    report.Series(loop.name, ns);
    if (std::string(loop.name) == "std_vector_multiply") std_mean = ns.Mean();
    if (std::string(loop.name) == "mm_element_multiply") {
      mm_elem_mean = ns.Mean();
    }
  }
  // The modeled (virtual) overhead ratio the simulation charges per access,
  // and the measured wall-clock ratio next to it.
  const auto& costs = sim::CostModel::Default();
  const double virtual_pct =
      100.0 * costs.mm_access_overhead_s / costs.memory_access_s;
  const double real_pct =
      std_mean > 0 ? 100.0 * (mm_elem_mean - std_mean) / std_mean : 0.0;
  report.Metric("virtual_overhead_pct", virtual_pct);
  report.Metric("real_element_overhead_pct", real_pct);
  std::printf("%s", table.Render(csv).c_str());
  std::printf("virtual_overhead_pct=%.2f real_element_overhead_pct=%.2f\n",
              virtual_pct, real_pct);
  if (!report.Write(out_path)) return 1;
  return 0;
}
