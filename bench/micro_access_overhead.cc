// §III-E microbenchmark: "reading from MegaMmap vectors adds two integer
// operations and a conditional statement as overhead to a typical memory
// access ... this overhead is minor (~5%) ... in an iterative workload that
// multiplies a matrix by a scalar."
//
// Two views of the claim:
//  * virtual: the modeled per-access overhead constant vs the modeled
//    memory access (reported as a counter);
//  * real: wall-clock ns/element of the scalar-multiply loop over
//    mm::Vector's cached fast path vs std::vector.
#include <benchmark/benchmark.h>

#include "mm/mega_mmap.h"

namespace {

using namespace mm;

struct Fixture {
  Fixture() {
    cluster = sim::Cluster::PaperTestbed(1);
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)}};
    so.enable_prefetch = false;
    service = std::make_unique<core::Service>(cluster.get(), so);
    world = std::make_unique<comm::World>(cluster.get(), 1, 1);
    ctx = std::make_unique<comm::RankContext>(world.get(), 0);
    core::VectorOptions vo;
    vo.pcache_bytes = MEGABYTES(32);
    vo.nonvolatile = false;
    vec = std::make_unique<Vector<double>>(*service, *ctx, "bench_matrix", kN,
                                           vo);
    // Materialize all pages up front (the benchmark measures the fast
    // path, not faults).
    auto tx = vec->SeqTxBegin(0, kN, core::MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < kN; ++i) (*vec)[i] = double(i);
    vec->TxEnd();
  }

  static constexpr std::uint64_t kN = 1 << 20;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<core::Service> service;
  std::unique_ptr<comm::World> world;
  std::unique_ptr<comm::RankContext> ctx;
  std::unique_ptr<Vector<double>> vec;
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_StdVectorScalarMultiply(benchmark::State& state) {
  std::vector<double> v(Fixture::kN);
  for (std::uint64_t i = 0; i < Fixture::kN; ++i) v[i] = double(i);
  for (auto _ : state) {
    double s = 1.0000001;
    for (std::uint64_t i = 0; i < Fixture::kN; ++i) {
      v[i] *= s;
    }
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kN);
}
BENCHMARK(BM_StdVectorScalarMultiply);

void BM_MegaMmapScalarMultiply(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    double s = 1.0000001;
    auto tx = f.vec->SeqTxBegin(0, Fixture::kN, core::MM_READ_WRITE);
    for (std::uint64_t i = 0; i < Fixture::kN; ++i) {
      (*f.vec)[i] *= s;
    }
    f.vec->TxEnd();
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kN);
  // The modeled (virtual) overhead ratio the simulation charges per access.
  const auto& costs = sim::CostModel::Default();
  state.counters["virtual_overhead_pct"] =
      100.0 * costs.mm_access_overhead_s / costs.memory_access_s;
}
BENCHMARK(BM_MegaMmapScalarMultiply);

/// The span fast path: pages resolved and pinned once per window, element
/// access is pointer arithmetic.
void BM_MegaMmapSpanMultiply(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    double s = 1.0000001;
    auto tx = f.vec->SeqTxBegin(0, Fixture::kN, core::MM_READ_WRITE);
    const std::uint64_t chunk = f.vec->MaxSpanElems();
    for (std::uint64_t b = 0; b < Fixture::kN; b += chunk) {
      std::uint64_t e = std::min(Fixture::kN, b + chunk);
      auto span = f.vec->WriteSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) span[i] *= s;
    }
    f.vec->TxEnd();
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kN);
}
BENCHMARK(BM_MegaMmapSpanMultiply);

/// Read-only span sweep (the Listing 1 inner-loop shape after migration).
void BM_MegaMmapSpanRead(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    double sum = 0;
    const std::uint64_t chunk = f.vec->MaxSpanElems();
    for (std::uint64_t b = 0; b < Fixture::kN; b += chunk) {
      std::uint64_t e = std::min(Fixture::kN, b + chunk);
      auto span = f.vec->ReadSpan(b, e);
      for (std::uint64_t i = b; i < e; ++i) sum += span[i];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kN);
}
BENCHMARK(BM_MegaMmapSpanRead);

/// The raw cached-access fast path without transaction bookkeeping.
void BM_MegaMmapReadFastPath(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    double sum = 0;
    for (std::uint64_t i = 0; i < Fixture::kN; ++i) {
      sum += f.vec->Read(i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kN);
}
BENCHMARK(BM_MegaMmapReadFastPath);

}  // namespace

BENCHMARK_MAIN();
