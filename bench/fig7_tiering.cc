// Fig. 7 reproduction: the DMSH tiering study. Out-of-core Gray-Scott
// (grid bigger than the DRAM grant, checkpointed every step) runs over
// four tier compositions, reported with their dollar cost:
//
//   48D-48H           DRAM + HDD            (baseline, slowest)
//   48D-16N-32S       DRAM + NVMe + SSD
//   48D-32N-16S       DRAM + more NVMe
//   48D-48N           DRAM + NVMe only      (fastest, ~1.8x the baseline)
//
// Paper setup: 16 nodes, L=3456 (1.5 TB grid), plotgap=1, 5 steps, 8 TB
// moved. Here the same compositions scaled by 1/16384 on 4 nodes with an
// L that overflows the DRAM slice every step.
#include "bench/common.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "mm/apps/gray_scott.h"
#include "mm/sim/cost_model.h"

using namespace mm;
using namespace mmbench;

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_fig7_tiering.json";
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  const int nodes = 4, procs_per_node = 4;
  const double scale = 1.0 / 4096.0;
  auto scaled = [&](std::uint64_t gb) {
    return static_cast<std::uint64_t>(GIGABYTES(gb) * scale);
  };

  struct Composition {
    const char* label;
    std::vector<storage::TierGrant> grants;
  };
  // Every composition exactly fits the working set (the paper's tiers fit
  // the L=3456 dataset); the compositions differ in WHERE the overflow
  // beyond DRAM lands.
  std::vector<Composition> comps = {
      {"48D-48H",
       {{sim::TierKind::kDram, scaled(48)},
        {sim::TierKind::kHdd, scaled(48)}}},
      {"48D-16N-32S",
       {{sim::TierKind::kDram, scaled(48)},
        {sim::TierKind::kNvme, scaled(16)},
        {sim::TierKind::kSsd, scaled(32)}}},
      {"48D-32N-16S",
       {{sim::TierKind::kDram, scaled(48)},
        {sim::TierKind::kNvme, scaled(32)},
        {sim::TierKind::kSsd, scaled(16)}}},
      {"48D-48N",
       {{sim::TierKind::kDram, scaled(48)},
        {sim::TierKind::kNvme, scaled(48)}}},
  };

  apps::GrayScottConfig cfg;
  // Grid/node ~= 2x the DRAM slice: half the working set overflows into
  // the storage tiers every step (the paper's 96 GB grid over 48 GB DRAM).
  cfg.L = 144;
  cfg.steps = 5;
  cfg.plotgap = 1;  // flush every step, like the paper's 8 TB campaign
  cfg.page_size = 1024 * 1024;
  cfg.pcache_bytes = 3 * 1024 * 1024;

  std::printf("=== Fig. 7: DMSH tiering study (Gray-Scott, plotgap=1) ===\n");
  std::printf("(%d nodes, device sizes scaled 1/4096, %d reps; cost uses\n"
              " the paper's $/GB: HDD 0.02, SSD 0.04, NVMe 0.08)\n\n",
              nodes, reps);
  TablePrinter table({"composition", "runtime_s", "speedup_vs_48D-48H",
                      "storage_cost_$per_node_unscaled"});

  BenchReport report("fig7_tiering");
  report.Config("nodes", nodes);
  report.Config("reps", reps);
  report.Config("grid_L", double(cfg.L));
  report.Config("scale", scale);

  double baseline = 0;
  for (const Composition& comp : comps) {
    BenchDir dir(std::string("fig7_") + comp.label);
    std::string out_key = dir.Key("shdf", "gs.h5");
    StatAccumulator acc;
    double t = MeasureSeconds(reps, [&] {
      auto cluster = sim::Cluster::PaperTestbed(nodes, scale);
      core::ServiceOptions so;
      so.tier_grants = comp.grants;
      core::Service svc(cluster.get(), so);
      apps::GrayScottConfig run_cfg = cfg;
      run_cfg.out_key = out_key;
      return comm::RunRanks(*cluster, nodes * procs_per_node, procs_per_node,
                            [&](comm::RankContext& ctx) {
                              comm::Communicator comm(&ctx);
                              apps::GrayScottMega(svc, comm, run_cfg);
                            });
    }, nullptr, &acc);
    if (baseline == 0) baseline = t;
    // Dollar cost of the storage (non-DRAM) granted per node, reported at
    // the paper's unscaled sizes.
    double dollars = 0;
    for (const auto& grant : comp.grants) {
      if (grant.kind == sim::TierKind::kDram) continue;
      auto spec = sim::DeviceSpec::ForKind(grant.kind, grant.capacity);
      dollars += sim::DollarsForCapacity(
          spec, static_cast<std::uint64_t>(grant.capacity / scale));
    }
    table.AddRow({comp.label, Fmt(t), Fmt(baseline / t, 2), Fmt(dollars, 2)});
    report.Series(std::string(comp.label) + "_runtime_s", acc);
    report.Metric(std::string(comp.label) + "_mean_s", t);
    report.Metric(std::string(comp.label) + "_speedup", t > 0 ? baseline / t
                                                              : 0);
    report.Metric(std::string(comp.label) + "_cost_dollars", dollars);
  }
  std::printf("%s", table.Render(csv).c_str());

  // Critical-path attribution run (untimed, all-NVMe composition):
  // per-step epoch reports carry a "critpath" breakdown of the measured
  // stall into queue/network/device/coherence. Coverage per epoch is
  //   (compute + max(stall, attributed)) / (compute + stall)
  // so it is exactly 1.0 when the attribution fits inside the measured
  // stall and > 1.0 on over-attribution; check_perf.py gates max <= 1.05.
  {
    BenchDir dir("fig7_critpath");
    std::string report_path = (dir.path() / "epochs.jsonl").string();
    auto cluster = sim::Cluster::PaperTestbed(nodes, scale);
    core::ServiceOptions so;
    so.tier_grants = comps.back().grants;  // 48D-48N
    so.telemetry.report_path = report_path;
    // Tiny positive interval: one epoch per Gray-Scott step (<= 0 would
    // disable MaybeEpochReport entirely).
    so.telemetry.report_interval_s = 1e-9;
    so.telemetry.trace_path = (dir.path() / "trace.json").string();
    so.telemetry.trace_capacity = 1 << 18;
    {
      core::Service svc(cluster.get(), so);
      apps::GrayScottConfig run_cfg = cfg;
      run_cfg.out_key = dir.Key("shdf", "gs.h5");
      comm::RunRanks(
          *cluster, nodes * procs_per_node, procs_per_node,
          [&](comm::RankContext& ctx) {
            if (ctx.rank() == 0) {
              // Bridge the rank clocks' compute/stall totals (owned by the
              // World) and the flow spans into the service-side analyzer.
              comm::World* world = &ctx.world();
              world->set_trace(&svc.trace());
              svc.SetCritpathWallSource(
                  [world] { return world->CritpathTotals(); });
            }
            comm::Communicator comm(&ctx);
            // No rank proceeds (and so no epoch reports) until the rank-0
            // wiring above is visible.
            comm.Barrier();
            apps::GrayScottMega(svc, comm, run_cfg);
          });
      // The World dies with RunRanks; drop the callback into it before the
      // service's shutdown-time epoch report would call it.
      svc.SetCritpathWallSource(nullptr);
    }
    double cov_min = std::numeric_limits<double>::infinity();
    double cov_max = 0.0;
    int cov_epochs = 0;
    auto ns_field = [](const std::string& l, const char* key) -> double {
      auto p = l.find(key);
      if (p == std::string::npos) return 0.0;
      return std::atof(l.c_str() + p + std::strlen(key));
    };
    double queue_ns = 0, net_ns = 0, dev_ns = 0, coh_ns = 0, other_ns = 0;
    std::ifstream in(report_path);
    std::string line;
    while (std::getline(in, line)) {
      auto pos = line.find("\"coverage\":");
      if (pos == std::string::npos) continue;
      double cov = std::atof(line.c_str() + pos + 11);
      cov_min = std::min(cov_min, cov);
      cov_max = std::max(cov_max, cov);
      ++cov_epochs;
      queue_ns += ns_field(line, "\"queue_wait_ns\":");
      net_ns += ns_field(line, "\"network_ns\":");
      dev_ns += ns_field(line, "\"device_ns\":");
      coh_ns += ns_field(line, "\"coherence_ns\":");
      other_ns += ns_field(line, "\"other_stall_ns\":");
    }
    if (cov_epochs == 0) cov_min = 0.0;
    std::printf("\ncritpath: %d attributed epoch(s), coverage [%0.4f, %0.4f]\n"
                "  stall breakdown (ms): queue %.2f  network %.2f  device %.2f"
                "  coherence %.2f  other %.2f\n",
                cov_epochs, cov_min, cov_max, queue_ns / 1e6, net_ns / 1e6,
                dev_ns / 1e6, coh_ns / 1e6, other_ns / 1e6);
    report.Metric("critpath_epochs", cov_epochs);
    report.Metric("critpath_coverage_min", cov_min);
    report.Metric("critpath_coverage_max", cov_max);
    report.Metric("critpath_attributed_ms",
                  (queue_ns + net_ns + dev_ns + coh_ns) / 1e6);
  }

  report.Write(out_path);
  std::printf("\nExpected shape: HDD-only overflow slowest; adding NVMe/SSD\n"
              "improves ~1.5x; all-NVMe ~1.8x; cost tracks performance.\n");
  return 0;
}
