// Node-failure experiment (DESIGN.md §13): a distributed KMeans runs over
// the DSM on two nodes with link faults armed (drops + duplicates), taking
// a coordinated checkpoint every iteration. Mid-epoch a rank is killed;
// the survivors detect the death through the bounded collectives
// (kPeerDead), revoke, run ckpt::CollectiveRecover (re-home policy), shrink
// the communicator, redo the interrupted iteration on the remaining ranks,
// and finish the job. A fault-free reference run provides ground truth.
//
// Reported (BENCH_node_failure.json, gated by ci/check_perf.py):
//   recovery_time_fraction  virtual time from the kPeerDead verdict to the
//                           shrunk communicator / total job time — the
//                           failure-handling tax, must stay bounded;
//   retransmit_overhead     link retransmissions / total messages under the
//                           injected drop rate;
//   converged               1 when the survivors' final centroids match the
//                           fault-free reference within FP-reassociation
//                           tolerance;
//   pages_lost              dead node's pages not recoverable (must be 0:
//                           the epoch checkpoint makes everything durable).
#include "bench/common.h"

#include <cmath>
#include <cstring>

#include "mm/apps/points.h"
#include "mm/ckpt/collective.h"
#include "mm/ckpt/recovery.h"
#include "mm/core/service.h"
#include "mm/sim/network.h"

using namespace mm;
using namespace mmbench;

namespace {

constexpr int kClusters = 8;
constexpr int kIters = 6;
constexpr int kKillIter = 3;  // victim dies while reading this epoch's data
constexpr int kVictim = 3;
// One rank per node: the victim's death takes its whole node — and the DSM
// pages homed there — with it, so recovery actually re-homes state.
constexpr int kRanks = 4;
constexpr int kRanksPerNode = 1;
constexpr std::uint64_t kNumPoints = 600000;
constexpr std::uint64_t kPageBytes = 64 * 1024;
constexpr const char* kTag = "kmeans";

/// Centroids accumulate in doubles end to end so the only cross-run
/// difference is reduction-tree reassociation (~1e-13 relative), far inside
/// the convergence tolerance.
struct Centroids {
  double c[kClusters][3] = {};
};

struct Outcome {
  Centroids centroids;
  double recovery_s = 0.0;  // detect → shrunk communicator, virtual
  double total_s = 0.0;
  bool recovered = false;
  core::Service::RecoveryStats rec_stats;
};

core::ServiceOptions MakeOptions(const BenchDir& dir,
                                 const std::string& ckpt_sub) {
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(1)},
                    {sim::TierKind::kNvme, MEGABYTES(64)}};
  so.ckpt.dir = (dir.path() / ckpt_sub).string();
  so.recovery_policy = core::RecoveryPolicy::kRehome;
  return so;
}

std::uint64_t TotalPages() {
  return (kNumPoints * sizeof(apps::Point3) + kPageBytes - 1) / kPageBytes;
}

/// Reads pages [begin, end) and folds them into the per-cluster sums.
void FoldPages(core::Service& svc, core::VectorMeta& meta,
               comm::RankContext& ctx, const Centroids& in, std::uint64_t begin,
               std::uint64_t end, double sum[kClusters][3],
               double count[kClusters]) {
  sim::SimTime t = ctx.clock().now();
  std::uint64_t folded = 0;
  for (std::uint64_t p = begin; p < end; ++p) {
    sim::SimTime done = t;
    auto page = svc.ReadPage(meta, p, ctx.node(), t, &done);
    if (!page.ok()) {
      std::fprintf(stderr, "read page %llu failed: %s\n",
                   static_cast<unsigned long long>(p),
                   page.status().ToString().c_str());
      std::exit(1);
    }
    t = std::max(t, done);
    std::uint64_t pts = page->size() / sizeof(apps::Point3);
    std::uint64_t base = p * (kPageBytes / sizeof(apps::Point3));
    pts = std::min(pts, kNumPoints > base ? kNumPoints - base : 0);
    const auto* points = reinterpret_cast<const apps::Point3*>(page->data());
    for (std::uint64_t i = 0; i < pts; ++i) {
      const apps::Point3& pt = points[i];
      int best = 0;
      double best_d = 0.0;
      for (int c = 0; c < kClusters; ++c) {
        double dx = pt.x - in.c[c][0];
        double dy = pt.y - in.c[c][1];
        double dz = pt.z - in.c[c][2];
        double d = dx * dx + dy * dy + dz * dz;
        if (c == 0 || d < best_d) {
          best_d = d;
          best = c;
        }
      }
      sum[best][0] += pt.x;
      sum[best][1] += pt.y;
      sum[best][2] += pt.z;
      count[best] += 1.0;
    }
    folded += pts;
  }
  ctx.clock().AdvanceTo(t);
  ctx.Compute(static_cast<double>(folded) * kClusters * 1e-9);
}

/// Seeds the centroids from the first kClusters points (every rank derives
/// the same seeds from page 0).
Centroids SeedCentroids(core::Service& svc, core::VectorMeta& meta,
                        comm::RankContext& ctx) {
  sim::SimTime done = ctx.clock().now();
  auto page = svc.ReadPage(meta, 0, ctx.node(), ctx.clock().now(), &done);
  if (!page.ok()) {
    std::fprintf(stderr, "seed read failed: %s\n",
                 page.status().ToString().c_str());
    std::exit(1);
  }
  ctx.clock().AdvanceTo(done);
  const auto* points = reinterpret_cast<const apps::Point3*>(page->data());
  Centroids seed;
  for (int c = 0; c < kClusters; ++c) {
    seed.c[c][0] = points[c].x;
    seed.c[c][1] = points[c].y;
    seed.c[c][2] = points[c].z;
  }
  return seed;
}

/// One job: KMeans with a per-epoch collective checkpoint. When `kill` is
/// true, rank kVictim dies mid-read of iteration kKillIter and the
/// survivors recover, shrink, and redo the epoch. Returns via `out` (filled
/// by rank 0, which always survives).
comm::RunResult RunJob(sim::Cluster& cluster, core::Service& svc,
                       const std::string& data_key, bool kill, Outcome* out) {
  return comm::RunRanks(
      cluster, kRanks, kRanksPerNode, [&](comm::RankContext& ctx) {
        comm::Communicator world(&ctx);
        comm::Communicator comm = world;
        int nlive = kRanks;
        core::VectorOptions vo;
        vo.page_size = kPageBytes;
        auto meta = svc.RegisterVector(data_key, 1, vo);
        if (!meta.ok()) {
          std::fprintf(stderr, "register failed\n");
          std::exit(1);
        }
        Centroids state = SeedCentroids(svc, **meta, ctx);
        const std::uint64_t pages = TotalPages();
        auto sum_op = [](double a, double b) { return a + b; };
        int iter = 0;
        while (iter < kIters) {
          std::uint64_t begin = pages * comm.rank() / nlive;
          std::uint64_t end = pages * (comm.rank() + 1) / nlive;
          if (kill && iter == kKillIter && ctx.rank() == kVictim) {
            // Mid-epoch death: half the slice read, nothing contributed.
            double dummy_sum[kClusters][3] = {};
            double dummy_count[kClusters] = {};
            FoldPages(svc, **meta, ctx, state, begin, (begin + end) / 2,
                      dummy_sum, dummy_count);
            ctx.world().KillRank(ctx.rank(), ctx.clock().now());
            throw comm::RankDeathError(ctx.rank());
          }
          double sum[kClusters][3] = {};
          double count[kClusters] = {};
          FoldPages(svc, **meta, ctx, state, begin, end, sum, count);
          std::vector<double> flat(kClusters * 4);
          for (int c = 0; c < kClusters; ++c) {
            flat[c * 4 + 0] = sum[c][0];
            flat[c * 4 + 1] = sum[c][1];
            flat[c * 4 + 2] = sum[c][2];
            flat[c * 4 + 3] = count[c];
          }
          Status st = comm.AllReduceOr(flat, sum_op);
          if (!st.ok()) {
            // A peer died. Revoke, converge on the recovery barrier,
            // re-home the dead node's pages, shrink, redo the epoch.
            sim::SimTime detect = ctx.clock().now();
            comm.Revoke();
            auto rec = ckpt::CollectiveRecover(world, svc);
            if (!rec.ok()) {
              std::fprintf(stderr, "recovery failed: %s\n",
                           rec.status().ToString().c_str());
              std::exit(1);
            }
            comm = world.Shrink();
            nlive = ctx.world().live_ranks();
            if (ctx.rank() == 0 && out != nullptr) {
              out->recovered = true;
              out->recovery_s = ctx.clock().now() - detect;
              out->rec_stats = *rec;
            }
            continue;  // redo this iteration on the survivors
          }
          for (int c = 0; c < kClusters; ++c) {
            double n = flat[c * 4 + 3];
            if (n == 0.0) continue;  // empty cluster keeps its centroid
            state.c[c][0] = flat[c * 4 + 0] / n;
            state.c[c][1] = flat[c * 4 + 1] / n;
            state.c[c][2] = flat[c * 4 + 2] / n;
          }
          auto stats = ckpt::CollectiveCheckpoint(world, svc, kTag);
          if (!stats.ok()) {
            std::fprintf(stderr, "checkpoint failed: %s\n",
                         stats.status().ToString().c_str());
            std::exit(1);
          }
          ++iter;
        }
        if (ctx.rank() == 0 && out != nullptr) {
          out->centroids = state;
          out->total_s = ctx.clock().now();
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_node_failure.json";
  bool csv = CsvMode(argc, argv);
  BenchDir dir("node_failure");
  std::string data_key = StageParticles(dir, kNumPoints, 8, 42);

  // --- Reference: fault-free, same geometry. ---
  Outcome reference;
  {
    auto cluster = sim::Cluster::PaperTestbed(4);
    core::Service svc(cluster.get(), MakeOptions(dir, "ckpt_ref"));
    auto run = RunJob(*cluster, svc, data_key, /*kill=*/false, &reference);
    if (!run.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n", run.error.c_str());
      return 1;
    }
  }

  // --- Failure run: link faults armed, rank killed mid-epoch. ---
  Outcome failed;
  std::uint64_t retransmits = 0;
  std::uint64_t messages = 0;
  std::vector<int> dead_ranks;
  {
    auto cluster = sim::Cluster::PaperTestbed(4);
    sim::NetFaultSpec net;
    net.drop_rate = 0.02;
    net.dup_rate = 0.01;
    cluster->network().ConfigureFaults(net, /*seed=*/42);
    core::Service svc(cluster.get(), MakeOptions(dir, "ckpt_kill"));
    auto run = RunJob(*cluster, svc, data_key, /*kill=*/true, &failed);
    if (!run.ok()) {
      std::fprintf(stderr, "failure run failed: %s\n", run.error.c_str());
      return 1;
    }
    retransmits = cluster->network().retransmits();
    messages = cluster->network().total_messages();
    dead_ranks = run.dead_ranks;
  }

  double max_diff = 0.0;
  for (int c = 0; c < kClusters; ++c) {
    for (int d = 0; d < 3; ++d) {
      max_diff = std::max(
          max_diff, std::fabs(reference.centroids.c[c][d] -
                              failed.centroids.c[c][d]));
    }
  }
  // The only legitimate divergence is reduction-tree reassociation (the
  // survivors reduce over 3 ranks instead of 4); anything larger means the
  // redo lost or double-counted data.
  bool converged = failed.recovered && max_diff < 1e-6 &&
                   dead_ranks == std::vector<int>{kVictim};
  double recovery_fraction =
      failed.total_s > 0.0 ? failed.recovery_s / failed.total_s : 1.0;
  double retransmit_overhead =
      messages > 0 ? static_cast<double>(retransmits) /
                         static_cast<double>(messages)
                   : 0.0;

  std::printf("=== Node failure: KMeans rank killed mid-epoch ===\n\n");
  TablePrinter table({"metric", "value"});
  table.AddRow({"total_s", Fmt(failed.total_s)});
  table.AddRow({"recovery_s", Fmt(failed.recovery_s)});
  table.AddRow({"recovery_time_fraction", Fmt(recovery_fraction)});
  table.AddRow({"retransmit_overhead", Fmt(retransmit_overhead)});
  table.AddRow({"pages_rehomed",
                std::to_string(failed.rec_stats.rehomed)});
  table.AddRow({"pages_lost", std::to_string(failed.rec_stats.lost)});
  table.AddRow({"max_centroid_diff", Fmt(max_diff, 9)});
  table.AddRow({"converged", converged ? "yes" : "NO"});
  std::printf("%s", table.Render(csv).c_str());
  std::printf(
      "\nExpected: rank %d dies reading epoch %d; the survivors detect it\n"
      "through the bounded collective, re-home the dead node's pages (all\n"
      "durable thanks to the per-epoch checkpoint: 0 lost), redo the epoch\n"
      "3-wide, and land on the reference centroids within reassociation\n"
      "tolerance.\n",
      kVictim, kKillIter);

  BenchReport report("node_failure");
  report.Config("points", static_cast<double>(kNumPoints));
  report.Config("clusters", kClusters);
  report.Config("iterations", kIters);
  report.Config("kill_iteration", kKillIter);
  report.Config("victim_rank", kVictim);
  report.Config("ranks", kRanks);
  report.Config("drop_rate", 0.02);
  report.Metric("total_s", failed.total_s);
  report.Metric("recovery_s", failed.recovery_s);
  report.Metric("recovery_time_fraction", recovery_fraction);
  report.Metric("retransmit_overhead", retransmit_overhead);
  report.Metric("pages_rehomed", static_cast<double>(failed.rec_stats.rehomed));
  report.Metric("pages_lost", static_cast<double>(failed.rec_stats.lost));
  report.Metric("max_centroid_diff", max_diff);
  report.Metric("converged", converged ? 1.0 : 0.0);
  if (!report.Write(out_path)) return 1;
  return converged ? 0 : 1;
}
