// Conservative virtual-time substrate.
//
// The reproduction environment has one physical core and no cluster, so
// performance results are produced under a deterministic virtual-time model
// (DESIGN.md §5): every simulated rank owns a VirtualClock; compute is
// charged explicitly via the CostModel; communication and device access
// charge latency + bytes/bandwidth; a receive advances the receiver to at
// least the sender's stamp plus the message cost; barriers advance everyone
// to the global max.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace mm::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Per-rank virtual clock. Thread-confined: only the owning rank thread
/// mutates it, so no locking is needed on the hot path.
///
/// Critical-path sinks: every Advance() is compute and every forward
/// AdvanceTo() delta is a stall, so together the two sinks account for
/// the rank's entire wall time (compute_ns + stall_ns == now in ns).
/// The sinks are raw atomics rather than telemetry handles because sim
/// sits below telemetry in the layering; comm::World owns the per-rank
/// atomics and the service bridges their totals into mm.critpath.*.
class VirtualClock {
 public:
  VirtualClock() = default;

  SimTime now() const { return now_; }

  /// Charges `seconds` of virtual time (compute, local work).
  void Advance(SimTime seconds) {
    now_ += seconds;
    if (compute_ns_ != nullptr && seconds > 0) {
      compute_ns_->fetch_add(ToNs(seconds), std::memory_order_relaxed);
    }
  }

  /// Moves the clock forward to `t` if `t` is later (blocking waits,
  /// message receives, synchronous I/O completions).
  void AdvanceTo(SimTime t) {
    if (t <= now_) return;
    if (stall_ns_ != nullptr) {
      stall_ns_->fetch_add(ToNs(t - now_), std::memory_order_relaxed);
    }
    now_ = t;
  }

  /// Points the compute/stall accumulators at caller-owned atomics
  /// (nullptr detaches). Both sinks are bumped with relaxed adds only.
  void SetCritpathSinks(std::atomic<std::uint64_t>* compute_ns,
                        std::atomic<std::uint64_t>* stall_ns) {
    compute_ns_ = compute_ns;
    stall_ns_ = stall_ns;
  }

  void Reset() { now_ = 0.0; }

 private:
  static std::uint64_t ToNs(SimTime seconds) {
    return static_cast<std::uint64_t>(seconds * 1e9);
  }

  SimTime now_ = 0.0;
  std::atomic<std::uint64_t>* compute_ns_ = nullptr;
  std::atomic<std::uint64_t>* stall_ns_ = nullptr;
};

/// A serialized shared resource (device channel, NIC): requests queue behind
/// one another. Thread-safe; multiple rank threads and runtime workers
/// contend for the same device.
class BusyChannel {
 public:
  /// Reserves the channel for an operation that takes `duration` starting no
  /// earlier than `earliest`. Returns the completion time.
  SimTime Reserve(SimTime earliest, SimTime duration) {
    double expected = busy_until_.load(std::memory_order_relaxed);
    while (true) {
      double start = std::max(earliest, expected);
      double end = start + duration;
      if (busy_until_.compare_exchange_weak(expected, end,
                                            std::memory_order_acq_rel)) {
        return end;
      }
    }
  }

  SimTime busy_until() const {
    return busy_until_.load(std::memory_order_relaxed);
  }

  void Reset() { busy_until_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> busy_until_{0.0};
};

}  // namespace mm::sim
