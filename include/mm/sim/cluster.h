// Cluster topology: a set of nodes, each owning a DMSH (DRAM + storage
// tiers), connected by a Network, plus one shared PFS device that backs
// persistent vectors. `Cluster::PaperTestbed` mirrors the paper's research
// cluster: per node 48 GB DRAM, 128 GB NVMe, 256 GB SATA SSD, 1 TB HDD,
// 40 Gb/s RoCE Ethernet (paper §IV-A). Experiments scale capacities down by
// a documented factor; ratios are preserved.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mm/sim/device.h"
#include "mm/sim/network.h"
#include "mm/util/status.h"

namespace mm::sim {

/// Static description of one node's device complement.
struct NodeSpec {
  std::vector<DeviceSpec> tiers;  // must be sorted fastest-first

  /// Paper compute node, capacities scaled by `scale` (1.0 = full size).
  static NodeSpec PaperCompute(double scale = 1.0);
};

/// A live node: instantiated devices, fastest-first.
class Node {
 public:
  explicit Node(const NodeSpec& spec);

  std::size_t num_tiers() const { return devices_.size(); }
  Device& tier(std::size_t i) { return *devices_[i]; }
  const Device& tier(std::size_t i) const { return *devices_[i]; }

  /// Device for a tier kind; nullptr if this node lacks that tier.
  Device* FindTier(TierKind kind);

  std::uint64_t total_capacity() const;

  /// DRAM accounting for applications. Baselines that allocate past the
  /// node's DRAM are OOM-killed like Linux would (paper §IV-B.2); MegaMmap
  /// reserves its bounded caches up front and never exceeds them.
  void AllocateDram(std::uint64_t bytes);
  void FreeDram(std::uint64_t bytes);
  std::uint64_t dram_used() const {
    return dram_used_.load(std::memory_order_relaxed);
  }
  std::uint64_t dram_capacity() const;
  /// High-water mark of DRAM usage (reported as "memory utilization").
  std::uint64_t dram_peak() const {
    return dram_peak_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
  std::atomic<std::uint64_t> dram_used_{0};
  std::atomic<std::uint64_t> dram_peak_{0};
};

/// The whole simulated machine.
class Cluster {
 public:
  Cluster(std::size_t num_nodes, const NodeSpec& node_spec, NetworkSpec net,
          std::uint64_t pfs_capacity);

  std::size_t num_nodes() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_[i]; }
  const Node& node(std::size_t i) const { return *nodes_[i]; }
  Network& network() { return *network_; }
  Device& pfs() { return *pfs_; }

  /// The paper's testbed at `num_nodes` nodes, device capacities scaled by
  /// `scale` so that scaled-down workloads hit the same capacity cliffs.
  static std::unique_ptr<Cluster> PaperTestbed(std::size_t num_nodes,
                                               double scale = 1.0);

  void ResetStats();

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Device> pfs_;
};

}  // namespace mm::sim
