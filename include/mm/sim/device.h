// Storage-device models for the Deep Memory and Storage Hierarchy (DMSH).
//
// Each tier (DRAM, NVMe, SATA SSD, HDD, plus a remote PFS backend) is modeled
// by capacity, latency, bandwidth, and $/GB. Devices serialize concurrent
// requests through a BusyChannel, which is what produces the spill cliffs and
// contention effects in Figs. 6-8. Dollar costs reproduce Fig. 7's cost axis
// (paper: HDD $0.02/GB, SATA SSD $0.04/GB, NVMe $0.08/GB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/sim/virtual_clock.h"

namespace mm::sim {

/// Storage tier kinds, fastest first. Order matters: the DataOrganizer
/// promotes toward lower enum values.
enum class TierKind : int {
  kDram = 0,
  kNvme = 1,
  kSsd = 2,
  kHdd = 3,
  kPfs = 4,  // remote parallel filesystem (persistent backend)
};

const char* TierKindName(TierKind kind);

/// One-letter code used in Fig. 7 labels (D/H/S/N, P for PFS).
char TierKindCode(TierKind kind);

/// Static performance/cost description of a device.
struct DeviceSpec {
  TierKind kind = TierKind::kDram;
  std::uint64_t capacity_bytes = 0;
  double read_latency_s = 0.0;
  double write_latency_s = 0.0;
  double read_bw_Bps = 0.0;   // bytes/second (per channel)
  double write_bw_Bps = 0.0;  // bytes/second (per channel)
  double dollars_per_gb = 0.0;
  /// Internal parallelism: concurrent requests that proceed without
  /// queueing behind each other (NVMe queue pairs, PFS stripe servers).
  int channels = 1;

  /// Calibrated presets (DESIGN.md §2): plausible 2024-era hardware with the
  /// ratios the paper reports (HDD 6-10x slower than SSD/NVMe, NVMe within
  /// an order of magnitude of DRAM).
  static DeviceSpec Dram(std::uint64_t capacity);
  static DeviceSpec Nvme(std::uint64_t capacity);
  static DeviceSpec Ssd(std::uint64_t capacity);
  static DeviceSpec Hdd(std::uint64_t capacity);
  static DeviceSpec Pfs(std::uint64_t capacity);

  /// Preset by kind.
  static DeviceSpec ForKind(TierKind kind, std::uint64_t capacity);
};

/// A live device instance: spec + busy channel + usage accounting.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(spec),
        channels_(static_cast<std::size_t>(spec.channels > 0 ? spec.channels
                                                             : 1)) {}

  const DeviceSpec& spec() const { return spec_; }
  TierKind kind() const { return spec_.kind; }

  /// Simulates a read of `bytes` starting at `now`; returns completion time.
  /// `time_factor` scales the duration (fault-injected latency spikes).
  SimTime Read(SimTime now, std::uint64_t bytes, double time_factor = 1.0) {
    double dur = (spec_.read_latency_s +
                  static_cast<double>(bytes) / spec_.read_bw_Bps) *
                 time_factor;
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    return LeastBusy().Reserve(now, dur);
  }

  /// Simulates a write of `bytes` starting at `now`; returns completion time.
  SimTime Write(SimTime now, std::uint64_t bytes, double time_factor = 1.0) {
    double dur = (spec_.write_latency_s +
                  static_cast<double>(bytes) / spec_.write_bw_Bps) *
                 time_factor;
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    return LeastBusy().Reserve(now, dur);
  }

  /// Occupies the least-busy channel for `seconds` without transferring
  /// bytes. Models fault-injected latency spikes and failed-attempt stalls,
  /// which consume device time but move no data.
  SimTime Stall(SimTime now, double seconds) {
    return LeastBusy().Reserve(now, seconds);
  }

  /// Duration a read/write of `bytes` would take with an idle device.
  double ReadDuration(std::uint64_t bytes) const {
    return spec_.read_latency_s + static_cast<double>(bytes) / spec_.read_bw_Bps;
  }
  double WriteDuration(std::uint64_t bytes) const {
    return spec_.write_latency_s +
           static_cast<double>(bytes) / spec_.write_bw_Bps;
  }

  std::uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  /// Latest completion across all channels.
  SimTime busy_until() const {
    SimTime latest = 0.0;
    for (const auto& ch : channels_) latest = std::max(latest, ch.busy_until());
    return latest;
  }

  void ResetStats() {
    bytes_read_.store(0);
    bytes_written_.store(0);
    for (auto& ch : channels_) ch.Reset();
  }

 private:
  BusyChannel& LeastBusy() {
    std::size_t best = 0;
    SimTime best_t = channels_[0].busy_until();
    for (std::size_t i = 1; i < channels_.size(); ++i) {
      SimTime t = channels_[i].busy_until();
      if (t < best_t) {
        best_t = t;
        best = i;
      }
    }
    return channels_[best];
  }

  DeviceSpec spec_;
  std::vector<BusyChannel> channels_;
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace mm::sim
