// Simulated out-of-memory. Baseline (non-MegaMmap) applications allocate
// against their node's DRAM budget; exceeding it throws, modeling "the
// default behavior of Linux is to terminate programs overutilizing memory"
// (paper §IV-B.2, the Fig. 6 cliff). MegaMmap never throws this: it spills
// to lower tiers instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mm::sim {

class SimOutOfMemoryError : public std::runtime_error {
 public:
  SimOutOfMemoryError(std::uint64_t requested, std::uint64_t available)
      : std::runtime_error("simulated OOM kill: requested " +
                           std::to_string(requested) + " bytes, " +
                           std::to_string(available) + " available"),
        requested_(requested),
        available_(available) {}

  std::uint64_t requested() const { return requested_; }
  std::uint64_t available() const { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

}  // namespace mm::sim
