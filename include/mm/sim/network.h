// Network model: per-node NICs with serialized channels plus a link spec
// (latency + bandwidth). The paper's testbed has 40Gb/s RoCE-enabled
// Ethernet; the Spark baseline is attributed a TCP-grade path (higher
// latency, lower effective bandwidth) matching the paper's explanation of
// Fig. 5 ("its use of the slower TCP protocol").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mm/sim/fault.h"
#include "mm/sim/virtual_clock.h"
#include "mm/util/retry.h"
#include "mm/util/status.h"

namespace mm::sim {

struct NetworkSpec {
  double latency_s = 2e-6;      // one-way small-message latency
  double bandwidth_Bps = 5e9;   // per-flow effective bandwidth (40Gb/s)

  /// RDMA-grade path (RoCE on the 40Gb/s network).
  static NetworkSpec Roce40();
  /// TCP on the 10Gb/s network (Spark-style transport).
  static NetworkSpec Tcp10();
  /// Loopback within a node (shared-memory transport).
  static NetworkSpec Loopback();
};

/// Tracks per-node NIC contention and total traffic. Each NIC has several
/// lanes (DMA engines / QPs): a few in-flight transfers proceed without
/// queueing. Messages at or below kControlCutoff bytes bypass reservation
/// entirely — they cost latency + wire time but never occupy a lane.
class Network {
 public:
  static constexpr std::uint64_t kControlCutoff = 4096;
  static constexpr std::size_t kNicLanes = 4;

  Network(std::size_t num_nodes, NetworkSpec spec);

  const NetworkSpec& spec() const { return spec_; }

  /// Outcome of a simulated transfer: when the sender's egress completed
  /// (the sender may proceed) and when the bytes arrived at the receiver.
  struct TransferResult {
    SimTime egress_done;
    SimTime delivered;
  };

  /// Per-message fault outcome (reliable-channel view): the link layer
  /// retransmits until delivery, so faults surface as extra virtual time and
  /// these counters, never as a lost message.
  struct NetOutcome {
    /// Retransmissions this message needed (drops + partition holds).
    int retransmits = 0;
    /// The link delivered a second copy (receiver must dedup by seq).
    bool duplicated = false;
    /// Propagation latency took a delay spike.
    bool delayed = false;
  };

  /// Arms the deterministic link fault model. `rto` is the retransmission
  /// backoff charged per drop (reuses the tier-I/O retry policy shape).
  /// Faults apply to inter-node messages only; the zero-spec default keeps
  /// Transfer on the exact fault-free code path.
  void ConfigureFaults(const NetFaultSpec& spec, std::uint64_t seed,
                       RetryPolicy rto = {});
  const NetFaultSpec& fault_spec() const { return fault_spec_; }

  /// True when the partition window severs the (a, b) link at time `t`.
  bool Partitioned(SimTime t, std::size_t a, std::size_t b) const;

  /// Simulates moving `bytes` from node `src` to node `dst` starting at
  /// `now`. Charges both NICs (intra-node transfers use the loopback spec).
  /// With faults armed, drops/partitions delay the start by retransmission
  /// backoffs and delay spikes stretch propagation; `outcome` (optional)
  /// reports what was injected.
  TransferResult Transfer(SimTime now, std::size_t src, std::size_t dst,
                          std::uint64_t bytes, NetOutcome* outcome = nullptr);

  /// Idle-network duration of a transfer (for prefetcher estimates).
  double TransferDuration(std::size_t src, std::size_t dst,
                          std::uint64_t bytes) const;

  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  // --- fault stats (monotonic; exposed for benches/telemetry mirroring) ---
  std::uint64_t retransmits() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t delay_spikes() const {
    return delay_spikes_.load(std::memory_order_relaxed);
  }
  std::uint64_t partition_holds() const {
    return partition_holds_.load(std::memory_order_relaxed);
  }

  void ResetStats();

 private:
  /// Applies drop/partition/duplication/spike draws for one inter-node
  /// message. Returns the (possibly backoff-delayed) effective send time and
  /// the extra propagation seconds; fills `outcome`.
  SimTime ApplyLinkFaults(SimTime now, std::size_t src, std::size_t dst,
                          double* extra_latency, NetOutcome* outcome);

  NetworkSpec spec_;
  NetworkSpec loopback_;
  struct Nic {
    BusyChannel lanes[kNicLanes];
    BusyChannel& LeastBusy();
  };
  std::vector<std::unique_ptr<Nic>> nics_;
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_messages_{0};

  // Link fault model (immutable once armed; the release-store in
  // ConfigureFaults publishes the spec to concurrent Transfer callers).
  std::atomic<bool> faults_armed_{false};
  NetFaultSpec fault_spec_;
  std::uint64_t fault_seed_ = 0;
  RetryPolicy rto_;
  /// Per-link deterministic op counters (src * num_nodes + dst).
  std::vector<std::atomic<std::uint64_t>> link_ops_;
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> delay_spikes_{0};
  std::atomic<std::uint64_t> partition_holds_{0};
};

}  // namespace mm::sim
