// Network model: per-node NICs with serialized channels plus a link spec
// (latency + bandwidth). The paper's testbed has 40Gb/s RoCE-enabled
// Ethernet; the Spark baseline is attributed a TCP-grade path (higher
// latency, lower effective bandwidth) matching the paper's explanation of
// Fig. 5 ("its use of the slower TCP protocol").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mm/sim/virtual_clock.h"
#include "mm/util/status.h"

namespace mm::sim {

struct NetworkSpec {
  double latency_s = 2e-6;      // one-way small-message latency
  double bandwidth_Bps = 5e9;   // per-flow effective bandwidth (40Gb/s)

  /// RDMA-grade path (RoCE on the 40Gb/s network).
  static NetworkSpec Roce40();
  /// TCP on the 10Gb/s network (Spark-style transport).
  static NetworkSpec Tcp10();
  /// Loopback within a node (shared-memory transport).
  static NetworkSpec Loopback();
};

/// Tracks per-node NIC contention and total traffic. Each NIC has several
/// lanes (DMA engines / QPs): a few in-flight transfers proceed without
/// queueing. Messages at or below kControlCutoff bytes bypass reservation
/// entirely — they cost latency + wire time but never occupy a lane.
class Network {
 public:
  static constexpr std::uint64_t kControlCutoff = 4096;
  static constexpr std::size_t kNicLanes = 4;

  Network(std::size_t num_nodes, NetworkSpec spec);

  const NetworkSpec& spec() const { return spec_; }

  /// Outcome of a simulated transfer: when the sender's egress completed
  /// (the sender may proceed) and when the bytes arrived at the receiver.
  struct TransferResult {
    SimTime egress_done;
    SimTime delivered;
  };

  /// Simulates moving `bytes` from node `src` to node `dst` starting at
  /// `now`. Charges both NICs (intra-node transfers use the loopback spec).
  TransferResult Transfer(SimTime now, std::size_t src, std::size_t dst,
                          std::uint64_t bytes);

  /// Idle-network duration of a transfer (for prefetcher estimates).
  double TransferDuration(std::size_t src, std::size_t dst,
                          std::uint64_t bytes) const;

  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }

  void ResetStats();

 private:
  NetworkSpec spec_;
  NetworkSpec loopback_;
  struct Nic {
    BusyChannel lanes[kNicLanes];
    BusyChannel& LeastBusy();
  };
  std::vector<std::unique_ptr<Nic>> nics_;
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_messages_{0};
};

}  // namespace mm::sim
