// Deterministic, seedable fault injection for the simulated DMSH.
//
// The injector sits between the storage/runtime layers and the simulated
// devices: every device or backend (stager) operation first asks the
// injector for a Decision. Faults are drawn from a counter-based hash of
// (seed, stream, op index), so a given seed reproduces the exact same fault
// sequence regardless of thread interleaving — op N on a stream always
// sees the same decision, only *which* thread issues op N may vary.
//
// Three fault classes are modeled (ISSUE: robustness tentpole):
//   * transient I/O errors  — the op fails with kIoError; a retry (with a
//     new op index) usually succeeds,
//   * latency spikes        — the op succeeds but takes `spike_factor`
//     times longer, charged to the virtual clock,
//   * permanent tier death  — after `fail_after_ops` operations (or an
//     explicit FailTier call) every subsequent op on the tier returns
//     kUnavailable; the BufferManager then marks the tier dead and the
//     Service re-stages lost clean pages from the PFS backend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "mm/sim/device.h"
#include "mm/util/status.h"
#include "mm/util/yaml.h"

namespace mm::sim {

/// Deterministic process-death points along the checkpointed writeback path
/// (DESIGN.md §12 crash matrix). A crash armed at one of these fires the
/// moment execution reaches it: the reaching code abandons its operation
/// exactly as a killed process would (torn journal tail, half-written page,
/// unpublished manifest temp, partial restore) and the injector stays
/// `crashed()` so shutdown skips the clean-exit flush.
enum class CrashPoint : std::uint8_t {
  kNone = 0,
  /// Mid journal append: a torn redo record, no in-place write.
  kMidJournalAppend,
  /// Between journal append and the in-place write: record durable,
  /// backend untouched.
  kAfterJournalAppend,
  /// Mid in-place write: record durable, page torn on the backend.
  kMidInPlaceWrite,
  /// Between manifest temp write and rename: previous manifest survives.
  kMidManifestRename,
  /// Mid restore: directory partially rebuilt; restore must be rerunnable.
  kMidRestore,
};

constexpr const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kMidJournalAppend:
      return "mid_journal_append";
    case CrashPoint::kAfterJournalAppend:
      return "after_journal_append";
    case CrashPoint::kMidInPlaceWrite:
      return "mid_in_place_write";
    case CrashPoint::kMidManifestRename:
      return "mid_manifest_rename";
    case CrashPoint::kMidRestore:
      return "mid_restore";
  }
  return "unknown";
}

/// Deterministic uniform draw in [0, 1) from (seed, stream, op, salt) — the
/// counter-based hash shared by the tier and network fault oracles. The
/// salt decorrelates independent fault classes for the same op.
double FaultDraw(std::uint64_t seed, std::uint64_t stream, std::uint64_t op,
                 std::uint64_t salt);

/// Per-stream fault probabilities. All rates are in [0, 1].
struct TierFaultSpec {
  /// Probability an op fails with a transient kIoError.
  double transient_error_rate = 0.0;
  /// Probability an op's device time is multiplied by latency_spike_factor.
  double latency_spike_rate = 0.0;
  double latency_spike_factor = 10.0;
  /// When > 0, the stream fails permanently once this many ops completed.
  std::uint64_t fail_after_ops = 0;

  bool any() const {
    return transient_error_rate > 0 || latency_spike_rate > 0 ||
           fail_after_ops > 0;
  }
};

/// Per-link network fault probabilities (ISSUE 6 tentpole). All rates are
/// in [0, 1]; faults are drawn per (link, message index) from the same
/// counter-based hash as the tier faults, so a seed reproduces the exact
/// fault sequence regardless of thread interleaving.
struct NetFaultSpec {
  /// Probability a message is dropped in flight. Each drop costs the sender
  /// one retransmission (virtual-clock backoff via the RTO policy).
  double drop_rate = 0.0;
  /// Probability a message is delivered twice. The mailbox's sequence
  /// numbers dedup the second copy; the spurious delivery is counted.
  double dup_rate = 0.0;
  /// Probability a message's propagation latency is multiplied by
  /// delay_spike_factor (congestion / route-flap spike).
  double delay_spike_rate = 0.0;
  double delay_spike_factor = 10.0;
  /// Network partition during a virtual-time window: links crossing the cut
  /// between nodes [0, partition_boundary) and the rest are severed from
  /// partition_start_s until partition_heal_s. Messages sent into the cut
  /// are retransmitted until the heal and delivered afterwards (a partition
  /// that never heals is modeled by killing the isolated ranks instead).
  std::size_t partition_boundary = 0;
  double partition_start_s = 0.0;
  double partition_heal_s = 0.0;

  bool any() const {
    return drop_rate > 0 || dup_rate > 0 || delay_spike_rate > 0 ||
           partition_boundary > 0;
  }
};

/// Deterministic whole-rank death (sticky, like `crashed()`): the rank
/// registers its own death at the first communication operation at/after
/// the trigger and unwinds via RankDeathError. Survivors learn of it
/// through the failure detector (kPeerDead) and run collective recovery.
struct RankKillSpec {
  int rank = -1;
  /// Kill at the first comm op whose virtual time is >= this (< 0: off).
  double at_time_s = -1.0;
  /// Kill at the Nth comm op of the rank (0: off). Exact and
  /// interleaving-independent, preferred by tests.
  std::uint64_t after_comm_ops = 0;

  bool any() const {
    return rank >= 0 && (at_time_s >= 0.0 || after_comm_ops > 0);
  }
};

/// Whole-injector configuration: one spec per device tier plus one for the
/// stager/backend path, the network link faults, and the rank-kill plan.
struct FaultConfig {
  std::uint64_t seed = 0;
  std::array<TierFaultSpec, 5> tiers;  // indexed by TierKind
  TierFaultSpec backend;
  /// Link-layer faults; consumed by sim::Network (wired by the launcher or
  /// by Network::ConfigureFaults directly, not by the Service).
  NetFaultSpec net;
  /// Rank-death plan; consumed by comm::World.
  RankKillSpec kill;

  TierFaultSpec& tier(TierKind kind) {
    return tiers[static_cast<std::size_t>(kind)];
  }
  const TierFaultSpec& tier(TierKind kind) const {
    return tiers[static_cast<std::size_t>(kind)];
  }
  bool any() const;

  /// Parses a `faults:` YAML map. Unknown keys at any level are rejected
  /// with kInvalidArgument (a typo like `transient_errror_rate` must not
  /// silently disable the fault plan). Example:
  ///   faults:
  ///     seed: 1234
  ///     nvme:
  ///       transient_error_rate: 0.1
  ///       fail_after_ops: 500
  ///     backend:
  ///       latency_spike_rate: 0.01
  ///       latency_spike_factor: 20
  ///     net:
  ///       drop_rate: 0.01
  ///       partition: {boundary: 2, start_s: 1.0, heal_s: 2.0}
  ///     kill:
  ///       rank: 3
  ///       after_comm_ops: 100
  static StatusOr<FaultConfig> FromYaml(const yaml::Node& node);
};

/// Thread-safe fault oracle. One instance per Service; shared by all
/// TierStores and the stager wrappers of that service.
class FaultInjector {
 public:
  struct Decision {
    enum class Kind { kOk, kTransient, kPermanent };
    Kind kind = Kind::kOk;
    /// Multiplier on the op's device duration (>= 1; only meaningful for
    /// kOk / kTransient decisions).
    double spike_factor = 1.0;

    bool ok() const { return kind == Kind::kOk; }
  };

  explicit FaultInjector(FaultConfig config = {}) : config_(config) {}

  /// Consumes one op on a device tier and returns the injected fault, if any.
  Decision OnDeviceOp(TierKind tier) {
    return Draw(static_cast<std::size_t>(tier));
  }

  /// Consumes one op on the stager/backend path.
  Decision OnBackendOp() { return Draw(kBackendStream); }

  /// Manually kills a tier (tests / operator-initiated failure).
  void FailTier(TierKind tier) {
    MarkFailed(static_cast<std::size_t>(tier));
  }
  void FailBackend() { MarkFailed(kBackendStream); }

  bool TierFailed(TierKind tier) const {
    return streams_[static_cast<std::size_t>(tier)].failed.load(
        std::memory_order_acquire);
  }

  const FaultConfig& config() const { return config_; }

  // --- simulated process crashes (ckpt crash matrix) ---

  /// Arms a one-shot crash: the (`skip`+1)-th time execution reaches
  /// `point`, AtCrashPoint returns true and the injector becomes
  /// `crashed()` for the rest of the service's life.
  void ArmCrash(CrashPoint point, std::uint64_t skip = 0) {
    crash_skip_.store(skip, std::memory_order_relaxed);
    crash_point_.store(static_cast<std::uint8_t>(point),
                       std::memory_order_release);
  }

  /// True exactly once, when the armed crash fires at `point`. Call sites
  /// then leave torn state behind and bail, simulating process death.
  bool AtCrashPoint(CrashPoint point) {
    if (static_cast<CrashPoint>(crash_point_.load(
            std::memory_order_acquire)) != point ||
        crashed()) {
      return false;
    }
    if (crash_skip_.fetch_sub(1, std::memory_order_acq_rel) != 0) {
      return false;
    }
    crashed_.store(true, std::memory_order_release);
    return true;
  }

  /// Immediate unconditional death (benches: kill mid-iteration).
  void ForceCrash() { crashed_.store(true, std::memory_order_release); }

  /// Sticky: the simulated process died. The service refuses further
  /// journal/backend/checkpoint work and Shutdown skips the clean-exit
  /// flush, so on-disk state is exactly what the crash left behind.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // --- stats (monotonic counters; exposed for benches/tests) ---
  std::uint64_t transient_faults() const {
    return transient_faults_.load(std::memory_order_relaxed);
  }
  std::uint64_t latency_spikes() const {
    return latency_spikes_.load(std::memory_order_relaxed);
  }
  std::uint64_t permanent_failures() const {
    return permanent_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_observed(TierKind tier) const {
    return streams_[static_cast<std::size_t>(tier)].ops.load(
        std::memory_order_relaxed);
  }
  std::uint64_t backend_ops_observed() const {
    return streams_[kBackendStream].ops.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kBackendStream = 5;
  static constexpr std::size_t kNumStreams = 6;

  struct Stream {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<bool> failed{false};
  };

  const TierFaultSpec& SpecOf(std::size_t stream) const {
    return stream == kBackendStream ? config_.backend : config_.tiers[stream];
  }

  Decision Draw(std::size_t stream);
  void MarkFailed(std::size_t stream);

  FaultConfig config_;
  std::array<Stream, kNumStreams> streams_;
  std::atomic<std::uint64_t> transient_faults_{0};
  std::atomic<std::uint64_t> latency_spikes_{0};
  std::atomic<std::uint64_t> permanent_failures_{0};
  std::atomic<std::uint8_t> crash_point_{0};
  std::atomic<std::uint64_t> crash_skip_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace mm::sim
