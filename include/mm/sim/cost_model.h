// Compute-cost constants and financial-cost accounting.
//
// Compute is charged to virtual clocks deterministically. Constants are
// calibrated to a plausible ~2 GHz effective scalar pipeline per process
// (the paper's Xeon Silver 4114 at 48 threads/node is heavily
// oversubscribed, so per-process throughput is modest). Absolute values do
// not matter for reproduction; the compute:I/O ratio does, and these values
// put the paper's workloads in the same regime (compute-bound in DRAM,
// I/O-sensitive when spilled).
#pragma once

#include <cstdint>

#include "mm/sim/device.h"

namespace mm::sim {

struct CostModel {
  // --- per-element compute costs (seconds) ---
  double point_distance_s = 18e-9;   // 3-D euclidean distance, one centroid
  double entropy_update_s = 10e-9;   // one feature's impurity accumulation
  double cell_update_s = 14e-9;      // one Gray-Scott stencil cell update
  double kdtree_visit_s = 12e-9;     // one k-d tree node visit
  double compare_swap_s = 4e-9;      // sort/merge element step
  double memory_access_s = 1.2e-9;   // plain std::vector element access
  // The paper reports mm::Vector adds ~2 int ops + a conditional (~5%
  // overhead on an iterative multiply workload, §III-E).
  double mm_access_overhead_s = 0.35e-9;

  // DRAM-to-DRAM copy bandwidth (eviction copies dirty bytes out of the
  // pcache; the application pays only this copy, paper §III-B).
  double memcpy_Bps = 8e9;

  // --- software-path costs (seconds) ---
  double task_dispatch_s = 1.5e-6;   // enqueue+schedule one MemoryTask
  double page_fault_soft_s = 0.8e-6; // library fault-path bookkeeping
  double jvm_dispatch_s = 12e-6;     // Spark-style task dispatch (JVM, ser/de)

  static const CostModel& Default();
};

/// Dollar cost of a tier composition, Fig. 7 style: sum over devices of
/// (capacity granted to the program in GB) x ($/GB).
double DollarsForCapacity(const DeviceSpec& spec, std::uint64_t bytes_granted);

}  // namespace mm::sim
