// Configuration for the MegaMmap service and per-vector behavior. All
// settings are available both programmatically and via the YAML config
// (paper §III-A: "the MegaMmap configuration YAML file").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/ckpt/options.h"
#include "mm/core/coherence.h"
#include "mm/sim/fault.h"
#include "mm/storage/buffer_manager.h"
#include "mm/util/byte_units.h"
#include "mm/util/retry.h"
#include "mm/util/status.h"
#include "mm/util/yaml.h"

namespace mm::core {

/// Observability knobs (DESIGN.md §11). Metrics counters are always live
/// when compiled in (MM_TELEMETRY=ON, the default); these options gate the
/// trace recorder and the epoch report.
struct TelemetryOptions {
  /// Master switch for tracing + reporting. Metric counters stay on (they
  /// are relaxed atomics off the per-access path); compile with
  /// -DMM_TELEMETRY=OFF to remove instrumentation entirely.
  bool enabled = true;
  /// Non-empty: record virtual-clock spans and write a Chrome/Perfetto
  /// trace (chrome://tracing, https://ui.perfetto.dev) here at Shutdown.
  std::string trace_path;
  /// Trace ring-buffer capacity in events (oldest dropped when full).
  std::uint64_t trace_capacity = 1 << 16;
  /// Minimum virtual seconds between epochs emitted by MaybeEpochReport;
  /// <= 0 disables pacing entirely (MaybeEpochReport becomes a no-op; call
  /// EpochReport directly for unthrottled epochs).
  double report_interval_s = 0.0;
  /// Non-empty: per-epoch JSON lines are appended here.
  std::string report_path;
  /// Non-empty: arms the crash flight recorder. A bounded ring of the
  /// most recent spans is kept even when trace_path is unset, and crash
  /// points / rank kills / kDataLoss dump `flightrec_<rank>.json` into
  /// this directory as a postmortem.
  std::string flightrec_dir;
  /// Flight-ring capacity in spans (most recent kept).
  std::uint64_t flightrec_capacity = 256;
};

/// Per-vector knobs. Page size is immutable after creation (paper §III-C:
/// "immutable after the creation of the vector").
struct VectorOptions {
  /// Page size in bytes (rounded down to a whole number of elements).
  std::uint64_t page_size = 64 * kKiB;
  /// Maximum pcache bytes per process for this vector (BoundMemory).
  std::uint64_t pcache_bytes = 16 * kMiB;
  /// Coherence policy for the current phase.
  CoherenceMode mode = CoherenceMode::kReadWriteGlobal;
  /// Minimum prefetcher score still worth recording (Algorithm 1 input).
  double min_score = 0.25;
  /// Pages fetched ahead asynchronously into the pcache during sequential
  /// or predictable transactions.
  int prefetch_depth = 4;
  /// Volatile vectors are never staged to a backend.
  bool nonvolatile = true;
  /// Enables cross-thread lock-free readers on this vector's pcache frames
  /// (Vector::TryReadOptimistic, DESIGN.md §14). When on, the owning
  /// rank's scalar Set() brackets its byte stores in a seqlock write
  /// section so concurrent optimistic readers can never validate a torn
  /// element. Off by default: the extra two atomic bumps per scalar write
  /// are pure cost for the common single-threaded-per-rank discipline.
  bool optimistic_readers = false;
};

/// What survivors do with a dead node's DSM pages after fencing it
/// (DESIGN.md §13).
enum class RecoveryPolicy {
  /// Re-home: clean pages re-stage lazily from the backend; dirty pages are
  /// replayed from the dead node's redo journal when journaled writeback is
  /// on, else surface as kDataLoss.
  kRehome,
  /// Roll back: restore every vector from the last collective checkpoint
  /// and redo the lost epoch.
  kRollback,
};

/// Per-job service knobs.
struct ServiceOptions {
  /// scache capacity granted on each node, fastest-first (Fig. 7 sweeps
  /// this). Empty means "all of DRAM+NVMe at paper defaults" is NOT
  /// assumed; callers must set grants explicitly.
  std::vector<storage::TierGrant> tier_grants;
  /// High-latency worker group size per node (large transfers).
  int workers_per_node = 2;
  /// Low-latency worker group size per node (small, latency-sensitive).
  int low_latency_workers = 1;
  /// Tasks strictly below this byte size go to the low-latency group
  /// (paper §III-B: 16 KB).
  std::uint64_t low_latency_threshold = 16 * kKiB;
  /// Score updates between Data Organizer rebalance sweeps.
  int organize_every = 64;
  /// Master switches used by the scalability study (Fig. 5 runs MegaMmap
  /// "with no optimizations enabled") and the ablations.
  bool enable_prefetch = true;
  bool enable_organizer = true;
  /// Read fast path (DESIGN.md §14): read intents first try a lock-free
  /// versioned read on the calling thread — directory lookup, direct
  /// scache copy, version re-check — and only fall back to the routed
  /// kGetPage worker task on conflict, miss, or ineligible mode. The
  /// readpath bench flips this off to measure the queue path.
  bool enable_optimistic_reads = true;
  /// Verify per-page CRC-32 on reads that already pay a metadata lookup;
  /// mismatches on clean pages self-heal from the backend, mismatches on
  /// dirty pages surface as kDataLoss.
  bool verify_checksums = true;

  /// Retry/backoff applied to tier and stager I/O (backoff lands on the
  /// virtual clock).
  RetryPolicy retry;
  /// Fault-injection plan (defaults to no faults).
  sim::FaultConfig faults;
  /// Observability: trace recording and per-epoch runtime reports.
  TelemetryOptions telemetry;
  /// Crash consistency (DESIGN.md §12): journaled writeback and epoch
  /// checkpoints, enabled by setting `ckpt.dir`.
  ckpt::CkptOptions ckpt;
  /// How ckpt::CollectiveRecover treats a dead node's pages.
  RecoveryPolicy recovery_policy = RecoveryPolicy::kRehome;

  /// Parses a service config from YAML, e.g.:
  ///   runtime:
  ///     workers_per_node: 2
  ///     low_latency_workers: 1
  ///     low_latency_threshold: 16k
  ///     recovery_policy: rehome   # or: rollback
  ///   tiers:
  ///     - kind: dram
  ///       capacity: 1g
  ///     - kind: nvme
  ///       capacity: 4g
  ///   retry:
  ///     max_attempts: 4
  ///     initial_backoff_s: 0.0001
  ///   faults:
  ///     seed: 42
  ///     nvme:
  ///       transient_error_rate: 0.01
  ///   telemetry:
  ///     enabled: true
  ///     trace_path: /tmp/mm_trace.json
  ///     report_interval_s: 1.0
  ///     report_path: /tmp/mm_report.jsonl
  ///   ckpt:
  ///     dir: /tmp/mm_ckpt
  ///     journal_writeback: true
  static StatusOr<ServiceOptions> FromYaml(const yaml::Node& root);
};

}  // namespace mm::core
