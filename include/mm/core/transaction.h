// Transactional memory API (paper §III-A "Informing Policy with
// Transactional Memory" and Listing 2). A Transaction describes the access
// pattern a region of shared memory is about to incur: which elements, in
// what order, read or write. `tail` counts memory accesses made so far;
// `head` counts accesses already acknowledged by the prefetcher.
//
// Users can define custom transactions by subclassing Transaction and
// implementing ElementAt/GetPages, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "mm/util/hash.h"
#include "mm/util/status.h"

namespace mm::core {

/// Access-intent flags passed to TxBegin.
enum TxFlags : std::uint32_t {
  MM_READ_ONLY = 1u << 0,
  MM_WRITE_ONLY = 1u << 1,
  MM_READ_WRITE = MM_READ_ONLY | MM_WRITE_ONLY,
  MM_APPEND_ONLY = 1u << 2,
  /// Region is accessed by several processes; enables tree/replica fan-out.
  MM_COLLECTIVE = 1u << 3,
};

/// A fragment of one page touched by a transaction (Listing 2).
struct PageRegion {
  std::size_t page_idx = 0;
  std::size_t off = 0;   // byte offset within the page
  std::size_t size = 0;  // byte length within the page
  bool modified = false;

  bool operator==(const PageRegion&) const = default;
};

/// Base class for access-pattern descriptions (Listing 2). Positions are
/// access-sequence indices: access #0 is the first element the transaction
/// touches, and so on.
class Transaction {
 public:
  Transaction(std::uint32_t flags, std::size_t elem_size,
              std::size_t elems_per_page)
      : flags_(flags), elem_size_(elem_size), elems_per_page_(elems_per_page) {
    MM_CHECK(elem_size > 0 && elems_per_page > 0);
  }
  virtual ~Transaction() = default;

  std::uint32_t flags() const { return flags_; }
  bool writes() const {
    return (flags_ & (MM_WRITE_ONLY | MM_APPEND_ONLY)) != 0;
  }
  bool reads() const { return (flags_ & MM_READ_ONLY) != 0; }
  bool collective() const { return (flags_ & MM_COLLECTIVE) != 0; }

  /// Number of accesses acknowledged by the prefetcher.
  std::size_t head() const { return head_; }
  /// Number of accesses made so far.
  std::size_t tail() const { return tail_; }
  void set_head(std::size_t h) { head_ = h; }
  void AdvanceTail() { ++tail_; }
  /// Batched advance (span access: one bump for a whole pinned window).
  void AdvanceTail(std::size_t n) { tail_ += n; }

  /// Total accesses this transaction will perform.
  virtual std::size_t TotalAccesses() const = 0;

  /// The element index touched by access #pos (pos < TotalAccesses()).
  virtual std::size_t ElementAt(std::size_t pos) const = 0;

  /// Whether a page touched before `tail` may be touched again later
  /// (Algorithm 1 note: "certain transactions (e.g., random) may touch a
  /// page several times"). Pages that may be retouched are not scored 0.
  virtual bool MayRetouch() const { return false; }

  /// The page regions covered by accesses [pos, pos+count), clipped to the
  /// transaction's length. Default implementation walks ElementAt; pattern
  /// subclasses override with closed forms where possible.
  virtual std::vector<PageRegion> GetPages(std::size_t pos,
                                           std::size_t count) const;

  /// Regions already touched (Listing 2 GetTouchedPages).
  std::vector<PageRegion> GetTouchedPages() const {
    return GetPages(head_, tail_ - head_);
  }
  /// Regions about to be touched (Listing 2 GetFuturePages).
  std::vector<PageRegion> GetFuturePages(std::size_t count) const {
    return GetPages(tail_, count);
  }

  std::size_t elem_size() const { return elem_size_; }
  std::size_t elems_per_page() const { return elems_per_page_; }
  std::size_t PageOfElement(std::size_t elem) const {
    return elem / elems_per_page_;
  }

 protected:
  std::uint32_t flags_;
  std::size_t elem_size_;
  std::size_t elems_per_page_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// Sequential scan over elements [begin, begin+count) (SeqTxBegin).
class SeqTx final : public Transaction {
 public:
  SeqTx(std::uint32_t flags, std::size_t elem_size, std::size_t elems_per_page,
        std::size_t begin_elem, std::size_t count)
      : Transaction(flags, elem_size, elems_per_page),
        begin_elem_(begin_elem),
        count_(count) {}

  std::size_t TotalAccesses() const override { return count_; }
  std::size_t ElementAt(std::size_t pos) const override {
    return begin_elem_ + pos;
  }
  std::vector<PageRegion> GetPages(std::size_t pos,
                                   std::size_t count) const override;

 private:
  std::size_t begin_elem_;
  std::size_t count_;
};

/// Strided scan: elements begin, begin+stride, ... (count accesses).
class StrideTx final : public Transaction {
 public:
  StrideTx(std::uint32_t flags, std::size_t elem_size,
           std::size_t elems_per_page, std::size_t begin_elem,
           std::size_t stride, std::size_t count)
      : Transaction(flags, elem_size, elems_per_page),
        begin_elem_(begin_elem),
        stride_(stride),
        count_(count) {
    MM_CHECK(stride > 0);
  }

  std::size_t TotalAccesses() const override { return count_; }
  std::size_t ElementAt(std::size_t pos) const override {
    return begin_elem_ + pos * stride_;
  }

 private:
  std::size_t begin_elem_;
  std::size_t stride_;
  std::size_t count_;
};

/// Pseudo-random accesses over [lo, hi), reproducible from a seed (paper
/// §I: "factors such as randomness seeds ... are used to guide data
/// organization decisions"). The stream is stateless — access #pos is a
/// hash of (seed, pos) — so prediction is O(1) per position.
class RandTx final : public Transaction {
 public:
  RandTx(std::uint32_t flags, std::size_t elem_size,
         std::size_t elems_per_page, std::size_t lo, std::size_t hi,
         std::size_t count, std::uint64_t seed)
      : Transaction(flags, elem_size, elems_per_page),
        lo_(lo),
        hi_(hi),
        count_(count),
        seed_(seed) {
    MM_CHECK(hi > lo);
  }

  std::size_t TotalAccesses() const override { return count_; }
  /// The deterministic stream formula, exposed so applications (e.g. the
  /// Random Forest bagger) can consume exactly the elements the prefetcher
  /// predicts.
  static std::size_t ElementOf(std::uint64_t seed, std::size_t pos,
                               std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(
                    MixU64(seed ^ (pos * 0x9E3779B97F4A7C15ULL)) % (hi - lo));
  }
  std::size_t ElementAt(std::size_t pos) const override {
    return ElementOf(seed_, pos, lo_, hi_);
  }
  bool MayRetouch() const override { return true; }

 private:
  std::size_t lo_;
  std::size_t hi_;
  std::size_t count_;
  std::uint64_t seed_;
};

}  // namespace mm::core
