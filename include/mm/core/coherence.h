// Coherence policies (paper Fig. 3 and §III-C). The policy is a property of
// a vector's current phase and may change at synchronization points
// (ChangePhase); leaving read-only invalidates all replicas.
#pragma once

#include <cstdint>

namespace mm::core {

enum class CoherenceMode : std::uint8_t {
  /// Read/Write Local: every process touches a non-overlapping region; only
  /// modified bytes ship on eviction, so no cross-process conflict exists.
  kLocal = 0,
  /// Read Only Global: data is immutable; pages replicate freely into the
  /// pcache and nearby scache partitions to improve availability.
  kReadOnlyGlobal = 1,
  /// Write Only Global: concurrent writers; MemoryTasks for the same page
  /// hash to the same worker and execute in order.
  kWriteOnlyGlobal = 2,
  /// Append Only Global: like write-only, plus atomic tail extension.
  kAppendOnlyGlobal = 3,
  /// Read, Write, Append Global: strongest (and default) mode. Single-page
  /// transactions are atomic; multi-page transactions need app-level locks.
  kReadWriteGlobal = 4,
};

const char* CoherenceModeName(CoherenceMode mode);

/// True when the mode permits replication of pages across nodes.
inline bool AllowsReplication(CoherenceMode mode) {
  return mode == CoherenceMode::kReadOnlyGlobal;
}

/// True when writes under this mode must be ordered through the owner
/// node's page-hashed worker.
inline bool RequiresOrderedWrites(CoherenceMode mode) {
  return mode == CoherenceMode::kWriteOnlyGlobal ||
         mode == CoherenceMode::kAppendOnlyGlobal ||
         mode == CoherenceMode::kReadWriteGlobal;
}

/// True when read intents under this mode may be served on the calling
/// thread through the optimistic read path (DESIGN.md §14) instead of the
/// owner worker's queue. Reads validate the directory version across the
/// copy, so every mode qualifies except write-only: its phases have no
/// read intents by contract, and a mid-phase read would race the write
/// stream into wasted retries rather than useful hits.
bool AllowsOptimisticReads(CoherenceMode mode);

}  // namespace mm::core
