// MemoryTasks: the unit of work submitted by the MegaMmap library to the
// runtime (paper §III-B). Tasks carry the blob id, payload, and a simulated
// issue time; workers execute them against the node's BufferManager,
// metadata, and stagers, and fulfill a promise with the outcome.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "mm/sim/virtual_clock.h"
#include "mm/storage/blob.h"
#include "mm/util/status.h"

namespace mm::core {

struct TaskOutcome {
  Status status;
  std::vector<std::uint8_t> data;  // for reads
  sim::SimTime done = 0.0;         // simulated completion time
  std::uint64_t version = 0;       // page write-version (see BlobLocation)
  /// For write commits: the page version BEFORE this write. A writer's
  /// cached frame may adopt `version` only when its current frame version
  /// equals `prev_version` (otherwise another rank's bytes are missing
  /// from the frame and it must refetch at the next acquire).
  std::uint64_t prev_version = ~0ULL;
};

struct MemoryTask {
  enum class Kind : std::uint8_t {
    kGetPage,       // synchronous page fault read
    kWritePartial,  // async dirty-region update (copy-on-write commit)
    kScore,         // prefetcher importance score for the Data Organizer
    kStageOut,      // persist a page to the vector's backend
    kErase,         // drop a page from the scache
  };

  Kind kind = Kind::kGetPage;
  std::uint64_t vector_id = 0;
  storage::BlobId id;
  std::uint64_t offset = 0;  // for partial ops, offset within the page
  std::uint64_t size = 0;    // for reads: bytes requested (0 = whole page)
  std::vector<std::uint8_t> data;  // for writes
  float score = 1.0f;
  std::size_t from_node = 0;
  sim::SimTime issue_time = 0.0;
  /// Fulfilled by the executing worker. Fire-and-forget submitters still
  /// keep the future so TxEnd can wait for ordering (real time) without
  /// charging the wait to the application's virtual clock.
  std::shared_ptr<std::promise<TaskOutcome>> promise;
};

/// Bytes a task moves — used for low/high-latency group routing.
inline std::uint64_t TaskBytes(const MemoryTask& task) {
  return task.data.empty() ? task.size : task.data.size();
}

}  // namespace mm::core
