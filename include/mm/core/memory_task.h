// MemoryTasks: the unit of work submitted by the MegaMmap library to the
// runtime (paper §III-B). Tasks carry the blob id, payload, and a simulated
// issue time; workers execute them against the node's BufferManager,
// metadata, and stagers, and fulfill a promise with the outcome.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mm/sim/virtual_clock.h"
#include "mm/storage/blob.h"
#include "mm/telemetry/trace.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::core {

/// Thread-safe free-list of byte buffers recycled across MemoryTasks and
/// page frames. Page-sized payloads (kGetPage faults, kWritePartial
/// commits, kStageOut staging, evicted pcache frames) churn at scan rate;
/// without pooling every one is a fresh heap allocation. Buffers are
/// bucketed by capacity; Acquire hits when a buffer of the exact size was
/// released before (page sizes are uniform per vector, so the hit rate on
/// the hot path approaches 1 after warmup).
///
/// Acquire never returns stale bytes to zero-expecting callers: use
/// AcquireZeroed wherever the buffer stands in for a fresh page.
class PagePool {
 public:
  /// `max_bytes` caps the total bytes parked in the pool; releases beyond
  /// the cap simply free the buffer.
  explicit PagePool(std::uint64_t max_bytes = 64ull << 20)
      : max_bytes_(max_bytes) {}

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// A buffer of exactly `bytes` size; contents unspecified.
  std::vector<std::uint8_t> Acquire(std::uint64_t bytes) {
    {
      MutexLock lock(mu_);
      auto it = buckets_.find(bytes);
      if (it != buckets_.end() && !it->second.empty()) {
        std::vector<std::uint8_t> buf = std::move(it->second.back());
        it->second.pop_back();
        pooled_bytes_ -= buf.capacity();
        buf.resize(bytes);
        reuses_.fetch_add(1, std::memory_order_relaxed);
        return buf;
      }
    }
    allocations_.fetch_add(1, std::memory_order_relaxed);
    return std::vector<std::uint8_t>(bytes);
  }

  /// A buffer of exactly `bytes`, zero-filled — recycled pages must never
  /// leak a previous page's bytes into a logically-fresh page.
  std::vector<std::uint8_t> AcquireZeroed(std::uint64_t bytes) {
    std::vector<std::uint8_t> buf = Acquire(bytes);
    std::memset(buf.data(), 0, buf.size());
    return buf;
  }

  /// Returns a buffer to the pool (dropped when the pool is at capacity or
  /// the buffer is empty).
  void Release(std::vector<std::uint8_t>&& buf) {
    const std::uint64_t cap = buf.capacity();
    if (cap == 0) return;
    MutexLock lock(mu_);
    if (pooled_bytes_ + cap > max_bytes_) return;  // buf frees on scope exit
    pooled_bytes_ += cap;
    buf.clear();
    buckets_[cap].push_back(std::move(buf));
  }

  /// Fresh heap allocations made on behalf of callers (pool misses).
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  /// Acquires served from the free list.
  std::uint64_t reuses() const {
    return reuses_.load(std::memory_order_relaxed);
  }
  std::uint64_t pooled_bytes() const {
    MutexLock lock(mu_);
    return pooled_bytes_;
  }

 private:
  // mm-verify: leaf-lock(free-list bookkeeping only, never calls out while held)
  mutable Mutex mu_;
  std::uint64_t max_bytes_;
  std::uint64_t pooled_bytes_ MM_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> reuses_{0};
  std::unordered_map<std::uint64_t, std::vector<std::vector<std::uint8_t>>>
      buckets_ MM_GUARDED_BY(mu_);  // keyed by capacity
};

/// RAII guard returning a buffer to its pool on every exit path (success
/// and error alike), so failed tasks do not leak their payload buffers out
/// of the recycling loop.
class PoolReturn {
 public:
  PoolReturn(PagePool& pool, std::vector<std::uint8_t>& buf)
      : pool_(pool), buf_(buf) {}
  ~PoolReturn() {
    if (!buf_.empty() || buf_.capacity() > 0) pool_.Release(std::move(buf_));
  }
  PoolReturn(const PoolReturn&) = delete;
  PoolReturn& operator=(const PoolReturn&) = delete;

 private:
  PagePool& pool_;
  std::vector<std::uint8_t>& buf_;
};

struct TaskOutcome {
  Status status;
  std::vector<std::uint8_t> data;  // for reads
  sim::SimTime done = 0.0;         // simulated completion time
  std::uint64_t version = 0;       // page write-version (see BlobLocation)
  /// For write commits: the page version BEFORE this write. A writer's
  /// cached frame may adopt `version` only when its current frame version
  /// equals `prev_version` (otherwise another rank's bytes are missing
  /// from the frame and it must refetch at the next acquire).
  std::uint64_t prev_version = ~0ULL;
};

struct MemoryTask {
  enum class Kind : std::uint8_t {
    kGetPage,       // synchronous page fault read
    kWritePartial,  // async dirty-region update (copy-on-write commit)
    kScore,         // prefetcher importance score for the Data Organizer
    kStageOut,      // persist a page to the vector's backend
    kErase,         // drop a page from the scache
    kBarrier,       // checkpoint quiesce marker: drains the queue ahead of it
  };

  Kind kind = Kind::kGetPage;
  std::uint64_t vector_id = 0;
  storage::BlobId id;
  std::uint64_t offset = 0;  // for partial ops, offset within the page
  std::uint64_t size = 0;    // for reads: bytes requested (0 = whole page)
  std::vector<std::uint8_t> data;  // for writes
  float score = 1.0f;
  std::size_t from_node = 0;
  sim::SimTime issue_time = 0.0;
  /// True when this kGetPage is the queue fallback of a failed optimistic
  /// read attempt (DESIGN.md §14): the submit path counts it under
  /// mm.readpath.fallback_count so hit-rate telemetry reconciles.
  bool optimistic_fallback = false;
  /// Causal flow identity minted at the request origin (DESIGN.md §11).
  /// The executing worker opens a child span linked to the origin's flow
  /// and installs the context so nested stager spans join it too. Invalid
  /// (zero) for background work — prefetch, scores, erases.
  telemetry::TraceContext tctx;
  /// True when this task is the terminal hop of an *async* flow (write
  /// commits): the worker's task span closes the flow ('f') instead of a
  /// plain step ('t'), since no origin span outlives it.
  bool trace_terminal = false;
  /// Fulfilled by the executing worker when non-null. Awaited tasks (page
  /// faults, commits TxEnd orders on, stage-outs) allocate a promise;
  /// fire-and-forget tasks (kScore, kErase, recovery restores) leave it
  /// null and skip the promise/shared-state allocation entirely — the
  /// worker then recycles the outcome's payload through the node pool.
  std::shared_ptr<std::promise<TaskOutcome>> promise;
};

/// Bytes a task moves — used for low/high-latency group routing.
inline std::uint64_t TaskBytes(const MemoryTask& task) {
  return task.data.empty() ? task.size : task.data.size();
}

}  // namespace mm::core
