// The private-cache prefetcher — a faithful implementation of the paper's
// Algorithm 1, decoupled from mm::Vector through a callback interface so it
// can be unit-tested against synthetic transactions.
//
// Semantics (paper §III-D):
//   Evict phase:  pages touched in [Head, Tail) score 0 and are evicted —
//                 unless the transaction may retouch pages (random); pages
//                 in the upcoming window [Tail, Tail + Max/PageSize) score 1.
//   Prefetch:     pages that fit in the free pcache space are fetched ahead
//                 asynchronously; pages beyond that are scored by
//                 time-to-fault so the Data Organizer can pre-position them
//                 in fast tiers.
//
// Note on the score formula: the paper's pseudocode computes
// Score = EstTime/BaseTime inside a `while Score > MinScore` loop, which
// diverges (the ratio grows past 1). The intended behaviour — scores
// decrease with distance-to-access so nearer pages win fast tiers — needs
// the inverted ratio, so we compute Score = BaseTime/EstTime and document
// the deviation here and in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>

#include "mm/core/transaction.h"

namespace mm::core {

/// Callbacks the prefetcher drives. All page arguments are page indices of
/// the vector the active transaction covers.
struct PrefetcherOps {
  /// Sends an importance score to the Data Organizer (async score task).
  std::function<void(std::uint64_t page, float score)> set_score;
  /// Evicts a page from the pcache (dirty data is flushed by the owner).
  std::function<void(std::uint64_t page)> evict_page;
  /// Starts an asynchronous fetch of a page into the pcache.
  std::function<void(std::uint64_t page)> fetch_ahead;
  /// True when the page is resident or already being fetched.
  std::function<bool(std::uint64_t page)> cached_or_pending;
  /// Idle estimate of reading the page from its current tier (Algorithm 1
  /// line 21: Page.GetSize()/T.BW).
  std::function<double(std::uint64_t page, std::uint64_t bytes)> est_read_seconds;
};

/// Capacity state of the vector's pcache (Vec.* in Algorithm 1).
struct PrefetchVecState {
  std::uint64_t max_bytes = 0;   // Vec.Max  (BoundMemory)
  std::uint64_t cur_bytes = 0;   // Vec.Cur  (committed pcache bytes)
  std::uint64_t page_bytes = 0;  // Vec.PageSize
};

class Prefetcher {
 public:
  /// Bounds the extended scoring loop so a tiny MinScore cannot make one
  /// step enumerate the whole dataset.
  static constexpr std::uint64_t kMaxScoredAhead = 64;

  /// One prefetcher invocation (Algorithm 1 PREFETCHER): evicts, scores,
  /// fetches ahead, then acknowledges the accesses (Head = Tail).
  static void Step(const PrefetchVecState& vec, Transaction& tx,
                   double min_score, const PrefetcherOps& ops);
};

}  // namespace mm::core
