// OptimisticGuard — the seqlock read/write protocol over PageFrame
// (DESIGN.md §14). Modeled on ScaleStore's optimistic version-latched
// guards: a reader acquires the frame's sequence word, copies what it
// needs, and re-checks the word; any overlap with a writer (odd word or a
// changed word) invalidates the read and the caller retries or falls back
// to the MemoryTask queue path. Writers (the owning rank thread) bracket
// every frame mutation — buffer swap at Insert, retirement at
// Remove/eviction/coherence invalidation, guarded scalar stores — in a
// FrameWriteGuard section.
//
// This header and core/pcache are the only places allowed to touch
// PageFrame::version directly (lint rule MML009); all other code reads it
// via OptimisticGuard::Version / a live guard and writes it via
// OptimisticGuard::SetVersion.
//
// TSan discipline: the byte copies use relaxed std::atomic_ref accesses
// (plain byte loads/stores on every target ISA), so a guarded reader
// racing a guarded writer is a *defined* race that validation discards —
// not undefined behavior, and not a TSan report.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "mm/core/pcache.h"
#include "mm/util/thread_annotations.h"

namespace mm::core {

/// RAII writer section on one frame: seq even -> odd on entry, odd -> even
/// on exit. Owner thread only; sections do not nest.
class MM_SCOPED_CAPABILITY FrameWriteGuard {
 public:
  explicit FrameWriteGuard(PageFrame* frame) MM_ACQUIRE(frame->seq)
      : frame_(frame) {
    frame_->seq.Lock();
  }
  ~FrameWriteGuard() MM_RELEASE() { frame_->seq.Unlock(); }
  FrameWriteGuard(const FrameWriteGuard&) = delete;
  FrameWriteGuard& operator=(const FrameWriteGuard&) = delete;

 private:
  PageFrame* frame_;
};

/// One optimistic read attempt on a frame. Usage:
///
///   const PageFrame* f = pcache.PeekFrame(page);
///   if (f == nullptr) return fallback();
///   OptimisticGuard g(*f);
///   if (!g.valid() || g.page() != page) return retry_or_fallback();
///   g.ReadBytes(offset, &out, sizeof(out));
///   std::uint64_t version = g.version();
///   if (!g.Validate()) return retry_or_fallback();  // torn — discard out
///
/// Everything read between construction and a successful Validate() is a
/// consistent snapshot of the frame; after a failed Validate() all of it
/// (including page()/version()) must be discarded.
class OptimisticGuard {
 public:
  explicit OptimisticGuard(const PageFrame& frame)
      : frame_(&frame), seq_(frame.seq.ReadAcquire()) {}

  /// False when a writer held the frame at acquire time (odd sequence);
  /// the caller should retry rather than read through the guard.
  bool valid() const { return SeqLatch::Stable(seq_); }

  /// True when no writer touched the frame since construction: everything
  /// read under the guard is a consistent snapshot.
  bool Validate() const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return frame_->seq.ReadRelaxed() == seq_ && valid();
  }

  /// Page number the frame held under the guard (validate before trusting).
  std::uint64_t page() const {
    return frame_->page.load(std::memory_order_relaxed);
  }

  /// Coherence write-version under the guard (validate before trusting).
  std::uint64_t version() const {
    return frame_->version.load(std::memory_order_relaxed);
  }

  /// Copies [off, off+len) of the frame's published bytes into `out` with
  /// relaxed atomic byte loads. The result is garbage until Validate()
  /// says otherwise — callers must never act on it before validating.
  void ReadBytes(std::size_t off, void* out, std::size_t len) const
      MM_NO_THREAD_SAFETY_ANALYSIS {  // seqlock read protocol: racing reads
                                      // are discarded by Validate()
    const std::uint8_t* src = frame_->bytes.load(std::memory_order_acquire);
    if (src == nullptr) return;  // retired/uninitialized: validation fails
    auto* dst = static_cast<std::uint8_t*>(out);
    for (std::size_t i = 0; i < len; ++i) {
      // atomic_ref<const T> is C++26; the relaxed load never mutates.
      std::atomic_ref<std::uint8_t> b(const_cast<std::uint8_t&>(src[off + i]));
      dst[i] = b.load(std::memory_order_relaxed);
    }
  }

  // ---- owner-side accessors (no guard needed: the owner thread is the
  // only writer, so its own reads of `version` are always coherent) ----

  static std::uint64_t Version(const PageFrame& frame) {
    return frame.version.load(std::memory_order_acquire);
  }
  static void SetVersion(PageFrame& frame, std::uint64_t version) {
    frame.version.store(version, std::memory_order_release);
  }

  /// Stores [off, off+len) into the frame's published bytes with relaxed
  /// atomic byte stores. Owner thread only, and only inside a
  /// FrameWriteGuard section (Vector::Set's guarded path uses this when
  /// concurrent optimistic readers are enabled).
  static void StoreBytes(PageFrame& frame, std::size_t off, const void* src,
                         std::size_t len) MM_NO_THREAD_SAFETY_ANALYSIS {
    // seqlock write protocol: the enclosing FrameWriteGuard orders this.
    std::uint8_t* dst = frame.bytes.load(std::memory_order_relaxed);
    const auto* s = static_cast<const std::uint8_t*>(src);
    for (std::size_t i = 0; i < len; ++i) {
      std::atomic_ref<std::uint8_t> b(dst[off + i]);
      b.store(s[i], std::memory_order_relaxed);
    }
  }

 private:
  const PageFrame* frame_;
  std::uint64_t seq_;
};

}  // namespace mm::core
