// The MegaMmap service: per-node runtimes (worker pools executing
// MemoryTasks), the distributed metadata manager, the vector registry, and
// the scache client API that mm::Vector uses. One Service instance exists
// per simulated job, shared by all ranks (paper Fig. 2: application
// processes submit MemoryTasks to the runtime through queues).
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <unordered_set>

#include "mm/ckpt/coordinator.h"
#include "mm/comm/dlock.h"
#include "mm/core/coherence.h"
#include "mm/core/memory_task.h"
#include "mm/core/options.h"
#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"
#include "mm/storage/buffer_manager.h"
#include "mm/storage/metadata.h"
#include "mm/storage/stager.h"
#include "mm/telemetry/metrics.h"
#include "mm/telemetry/report.h"
#include "mm/telemetry/sink.h"
#include "mm/telemetry/trace.h"
#include "mm/util/blocking_queue.h"
#include "mm/util/mutex.h"

namespace mm::core {

class Service;

/// Registered state of one shared vector (connected to by key).
struct VectorMeta {
  std::uint64_t vector_id = 0;
  std::string key;
  Uri uri;                             // parsed key
  storage::Stager* stager = nullptr;   // null for volatile vectors
  std::size_t elem_size = 0;
  std::uint64_t page_bytes = 0;        // rounded to whole elements
  std::atomic<std::uint64_t> size_bytes{0};  // logical size; appends grow it
  std::atomic<CoherenceMode> mode{CoherenceMode::kReadWriteGlobal};
  VectorOptions options;
  std::atomic<bool> destroyed{false};
  Mutex backend_mu;                    // serializes backend object creation
  bool backend_ready MM_GUARDED_BY(backend_mu) = false;

  /// PGAS placement hint (set by Vector::Pgas): maps pages to the node of
  /// the rank that owns them, giving unplaced pages a deterministic AND
  /// local first-touch owner (Fig. 3 locality without split-brain races).
  struct PgasHint {
    std::uint64_t n_elems = 0;
    int nprocs = 0;
    int ranks_per_node = 0;
  };
  Mutex hint_mu;
  std::optional<PgasHint> pgas_hint MM_GUARDED_BY(hint_mu);

  std::uint64_t num_elements() const {
    return size_bytes.load(std::memory_order_relaxed) / elem_size;
  }
  std::uint64_t elems_per_page() const { return page_bytes / elem_size; }
  std::uint64_t num_pages() const {
    std::uint64_t sz = size_bytes.load(std::memory_order_relaxed);
    return (sz + page_bytes - 1) / page_bytes;
  }
};

/// One node's runtime: worker threads draining MemoryTask queues. Tasks for
/// the same page hash to the same worker; tasks under the low-latency
/// threshold run on a separate worker group (paper §III-B).
class NodeRuntime {
 public:
  NodeRuntime(Service* service, std::size_t node_id,
              const ServiceOptions& options,
              const std::vector<storage::TierGrant>& grants);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Routes a task to its worker queue. Thread-safe. After Shutdown the
  /// task is rejected with kFailedPrecondition (its promise, if any, is
  /// fulfilled with that status) instead of aborting the process.
  Status Submit(MemoryTask task);

  storage::BufferManager& buffer() { return bm_; }

  /// Per-node recycled page-buffer pool: kGetPage/kWritePartial/kStageOut
  /// payloads and evicted pcache frames draw from (and return to) it
  /// instead of allocating fresh vectors on every task.
  PagePool& pool() { return pool_; }

  /// Checkpoint quiesce: pushes one kBarrier marker into every queue and
  /// waits until all of them execute — by FIFO order, every task submitted
  /// before the call has then committed. Returns the drain's virtual
  /// completion time (>= now).
  sim::SimTime Quiesce(sim::SimTime now);

  /// Stops accepting tasks, drains queues, joins workers.
  void Shutdown();

  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  // ---- read fast path telemetry (DESIGN.md §14) ----
  // Incremented by Service::TryReadPageOptimistic / ReadPage from *rank*
  // threads (not workers): the handles are cached here because this node's
  // runtime is where every other per-node counter lives.

  /// A read served lock-free on the calling thread, bypassing the queues.
  void CountReadpathHit() { readpath_hit_->Inc(); }
  /// Version-conflict retries spent inside optimistic attempts (a hit with
  /// one stable re-read after a racing writer counts 1).
  void CountReadpathRetries(std::uint64_t n) {
    if (n > 0) readpath_retry_->Inc(n);
  }
  /// An attempted optimistic read that landed on the queue path after all.
  void CountReadpathFallback() { readpath_fallback_->Inc(); }

 private:
  void WorkerLoop(BlockingQueue<MemoryTask>* queue, int worker_id);
  TaskOutcome Execute(MemoryTask& task);
  TaskOutcome ExecuteGetPage(MemoryTask& task);
  TaskOutcome ExecuteWritePartial(MemoryTask& task);
  TaskOutcome ExecuteScore(MemoryTask& task);
  TaskOutcome ExecuteStageOut(MemoryTask& task);
  TaskOutcome ExecuteErase(MemoryTask& task);

  /// Loads page bytes from the backend (or zero-fills) with PFS charging.
  TaskOutcome StageInOrZero(VectorMeta& meta, const storage::BlobId& id,
                            sim::SimTime now);

  /// Stager calls routed through the fault injector and retry policy, with
  /// PFS device time charged per attempt.
  Status BackendRead(VectorMeta& meta, std::uint64_t offset,
                     std::uint64_t size, std::vector<std::uint8_t>* bytes,
                     sim::SimTime now, sim::SimTime* done);
  Status BackendWrite(VectorMeta& meta, std::uint64_t offset,
                      const std::uint8_t* bytes, std::uint64_t size,
                      sim::SimTime now, sim::SimTime* done);

  /// Crash-consistent flush (DESIGN.md §12): appends a redo record with the
  /// page's directory version/CRC to this node's journal — durable before
  /// the in-place BackendWrite — and honors the armed crash points.
  /// `version`/`page_crc` describe the full committed page the payload
  /// belongs to. Falls through to a plain BackendWrite when journaling is
  /// off.
  Status JournaledBackendWrite(VectorMeta& meta, const storage::BlobId& id,
                               std::uint64_t version, std::uint32_t page_crc,
                               std::uint64_t offset, const std::uint8_t* bytes,
                               std::uint64_t size, sim::SimTime now,
                               sim::SimTime* done);

  Service* service_;
  std::size_t node_id_;
  const ServiceOptions& options_;
  // Telemetry sink and cached metric handles (resolved once; the hot paths
  // only touch relaxed atomics). tel_ must precede bm_: the buffer manager
  // is constructed with this node's sink.
  telemetry::NodeSink tel_;
  telemetry::Counter* task_executed_;          // mm.task.executed_count
  telemetry::Gauge* queue_depth_;              // mm.task.queue_depth_count
  telemetry::Counter* stager_read_bytes_;      // mm.stager.read_bytes
  telemetry::Counter* stager_write_bytes_;     // mm.stager.write_bytes
  telemetry::Counter* stager_errors_;          // mm.stager.errors_count
  telemetry::Counter* stager_retries_;         // mm.stager.retries_count
  telemetry::Histogram* task_latency_[6];      // mm.task.<kind>_ns, by Kind
  telemetry::Counter* ckpt_journal_bytes_;     // mm.ckpt.journal_bytes
  telemetry::Counter* readpath_hit_;           // mm.readpath.fastpath_hit_count
  telemetry::Counter* readpath_retry_;         // mm.readpath.retry_count
  telemetry::Counter* readpath_fallback_;      // mm.readpath.fallback_count
  storage::BufferManager bm_;
  PagePool pool_;
  std::vector<std::unique_ptr<BlockingQueue<MemoryTask>>> high_queues_;
  std::vector<std::unique_ptr<BlockingQueue<MemoryTask>>> low_queues_;
  std::vector<std::thread> workers_;
  std::atomic<int> score_updates_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<bool> shut_down_{false};
};

class Service {
 public:
  /// Builds per-node runtimes over `cluster` (which must outlive the
  /// service). The tier grants apply to every node.
  Service(sim::Cluster* cluster, ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  sim::Cluster& cluster() { return *cluster_; }
  const ServiceOptions& options() const { return options_; }
  storage::MetadataManager& metadata() { return *metadata_; }
  NodeRuntime& runtime(std::size_t node) { return *runtimes_[node]; }
  std::size_t num_nodes() const { return runtimes_.size(); }

  /// The fault oracle shared by every tier store and stager call of this
  /// service. Always present (a default-constructed injector never faults);
  /// tests use it to trigger failures (FailTier) and read stats.
  sim::FaultInjector& fault_injector() { return *injector_; }

  // ---- telemetry ----

  /// This node's metric/trace sink. Registries live as long as the service;
  /// instrumented components cache the returned pointers.
  telemetry::NodeSink telemetry_sink(std::size_t node) {
    return {metrics_[node].get(), trace_.get(), static_cast<int>(node)};
  }
  telemetry::MetricsRegistry& metrics(std::size_t node) {
    return *metrics_[node];
  }
  telemetry::TraceRecorder& trace() { return *trace_; }

  /// Aggregated view of every node's registry. Snapshot-time gauges (tier
  /// occupancy, pool counters) are refreshed before reading.
  telemetry::ClusterSnapshot TelemetrySnapshot();

  /// Emits one epoch report line (JSON deltas vs the previous epoch) and
  /// returns it; appends to `telemetry.report_path` when configured.
  /// Returns "" when telemetry is disabled.
  std::string EpochReport(double now_s);

  /// EpochReport, rate-limited by `telemetry.report_interval_s`. Returns ""
  /// when the interval has not elapsed (or the interval is unset).
  std::string MaybeEpochReport(double now_s);

  /// Bridges the per-rank virtual-clock wall accounting (typically
  /// comm::World::CritpathTotals) into mm.critpath.compute_ns/stall_ns at
  /// every epoch report, so the per-epoch critpath object can check the
  /// attribution against measured wall time. The source returns
  /// cumulative {compute_ns, stall_ns}; optional — without it the epoch
  /// critpath object carries attribution buckets only.
  void SetCritpathWallSource(
      std::function<std::pair<std::uint64_t, std::uint64_t>()> source);

  /// Crash flight recorder (DESIGN.md §11): writes
  /// `<telemetry.flightrec_dir>/flightrec_<node>.json` with the last spans
  /// from the always-on flight ring plus this node's metrics snapshot.
  /// No-op when flightrec_dir is unset. Safe from crash paths and the
  /// World death observer: touches only the trace and metrics leaf locks.
  void DumpFlightRecord(std::size_t node, std::string_view reason,
                        double now_s);

  // ---- fault recovery ----

  /// Tier-failure recovery, invoked by a node's BufferManager after a tier
  /// permanently fails: lost replicas are unregistered, lost clean primaries
  /// are re-staged from the backend, and lost dirty primaries are recorded
  /// as data loss (surfaced as kDataLoss on the next access).
  void OnTierFailure(std::size_t node, sim::TierKind tier,
                     const std::vector<storage::BlobId>& lost,
                     sim::SimTime now);

  // ---- node death recovery (DESIGN.md §13) ----

  /// Outcome of re-homing one dead node's DSM pages.
  struct RecoveryStats {
    std::uint64_t pages_scanned = 0;
    /// Clean primaries whose directory entry was dropped; they re-stage
    /// lazily from the backend on next touch.
    std::uint64_t rehomed = 0;
    /// Dirty primaries healed by replaying the dead node's redo journal.
    std::uint64_t journal_recovered = 0;
    /// Dirty primaries with no durable copy anywhere (kDataLoss on access).
    std::uint64_t lost = 0;
  };

  /// Fences `node` out of page placement: DefaultOwner and ChooseReadSource
  /// stop routing reads/writes at it. Sticky for the service's lifetime.
  void FenceNode(std::size_t node);
  bool NodeFenced(std::size_t node) const {
    return fenced_[node].load(std::memory_order_acquire);
  }

  /// Survivor-side recovery of a dead node's pages (RecoveryPolicy::kRehome):
  /// fences the node, then walks every registered vector's directory
  /// entries. Primaries on the dead node are dropped — clean ones re-stage
  /// lazily from the backend, dirty ones are replayed from the dead node's
  /// redo journal when durable, else recorded as typed data loss. Replica
  /// records on the dead node are unregistered. Call from the recovery
  /// barrier's serial section (all survivors parked), attributed to
  /// `from_node` for metadata-latency and metrics purposes.
  RecoveryStats RecoverDeadNode(std::size_t dead_node, std::size_t from_node,
                                sim::SimTime now);

  /// Accumulated stats of every RecoverDeadNode call so far (the recovery
  /// leader runs it in a barrier serial section; followers read this after
  /// release — ckpt::CollectiveRecover's result channel).
  RecoveryStats last_recovery() const {
    MutexLock lock(lost_mu_);
    return last_recovery_;
  }

  /// Data-loss registry: pages whose unstaged modifications are gone.
  /// `node` attributes the loss for the flight-recorder postmortem dumped
  /// on first registration of each lost page.
  void RecordDataLoss(const storage::BlobId& id, std::size_t node,
                      sim::SimTime now);
  bool IsDataLost(const storage::BlobId& id) const;
  void ClearDataLoss(const storage::BlobId& id);
  std::size_t data_loss_count() const;

  // ---- checkpoint / restore (mm::ckpt, DESIGN.md §12) ----

  /// Checkpoint subsystem state: per-node redo journals, epoch counter, the
  /// collective's leader→followers result channel. Always present;
  /// disabled (no journals) unless `ckpt.dir` is configured.
  ckpt::Coordinator& checkpointer() { return *ckpt_; }

  /// This node's redo journal; nullptr when checkpointing is disabled.
  ckpt::Journal* journal(std::size_t node) { return ckpt_->journal(node); }

  /// Coordinated incremental epoch checkpoint (single-rank form; ranks of a
  /// job use ckpt::CollectiveCheckpoint, which wraps this in a barrier
  /// serial section). Quiesces every node's task queues, stages out only
  /// pages dirtied since the previous epoch (journaled), and atomically
  /// publishes the `<tag>.mmck` manifest via temp + rename. Defined in
  /// src/ckpt/service_ckpt.cc.
  StatusOr<ckpt::CheckpointStats> Checkpoint(const std::string& tag,
                                             std::size_t from_node,
                                             sim::SimTime now,
                                             sim::SimTime* done);

  /// Rebuilds vectors and the metadata directory from the manifest of
  /// `tag`, overlaying any newer durable journal records; page contents
  /// fault back in lazily on first touch (CRC-verified against the
  /// restored directory entries). Idempotent; rerunnable after a crash
  /// mid-restore. Defined in src/ckpt/service_ckpt.cc.
  Status Restore(const std::string& tag, std::size_t from_node,
                 sim::SimTime now, sim::SimTime* done);

  /// Connects to (or creates) a shared vector. All processes using the same
  /// key share the object. For nonvolatile vectors whose backend object
  /// exists, the size is taken from the backend; otherwise `initial_elems`
  /// sets it. Idempotent and thread-safe.
  StatusOr<VectorMeta*> RegisterVector(const std::string& key,
                                       std::size_t elem_size,
                                       const VectorOptions& options,
                                       std::uint64_t initial_elems = 0);

  /// Looks up a registered vector by key (nullptr if unknown).
  VectorMeta* FindVector(const std::string& key);

  /// Connects to (or creates) a named distributed lock homed on
  /// `home_node`. All ranks requesting the same key get the SAME lock
  /// object — the real mutex inside it is what makes cross-rank critical
  /// sections genuinely exclusive (mm::BTree's SMO lease). Idempotent and
  /// thread-safe; `home_node` must agree across callers of one key.
  comm::DistributedLock& GetDistributedLock(const std::string& key,
                                            std::size_t home_node);

  /// Registers the PGAS partition of a vector (from Vector::Pgas). All
  /// ranks must pass identical values.
  void SetPgasHint(VectorMeta& meta, VectorMeta::PgasHint hint);

  /// Deterministic owner node for an unplaced page: the PGAS-hinted node
  /// when available, otherwise the blob's home node.
  std::size_t DefaultOwner(VectorMeta& meta, const storage::BlobId& id);

  /// Node a read of `id` should be served from (local copy > replica >
  /// primary owner > default owner). Charges the metadata lookup to *done.
  std::size_t ChooseReadSource(VectorMeta& meta, const storage::BlobId& id,
                               std::size_t from_node, sim::SimTime now,
                               sim::SimTime* done);

  /// Under read-only replication: caches a remotely-fetched page in the
  /// local scache partition and registers the replica (Fig. 3). No-op in
  /// other modes. Called by both the fault and prefetch completion paths.
  void MaybeReplicate(VectorMeta& meta, std::uint64_t page,
                      const std::vector<std::uint8_t>& data,
                      std::size_t from_node, sim::SimTime now);

  // ---- scache client API (called from rank threads) ----

  /// Synchronous page fault: fetches the whole page. Charges metadata
  /// lookup, remote transfer (if the owner is another node), device time,
  /// and stage-in as applicable. Concurrent faults for the same page on the
  /// same node share one fetch. `*done` receives the simulated completion.
  /// `optimistic_fallback` marks the call as the queue fallback of a failed
  /// optimistic attempt (counted under mm.readpath.fallback_count).
  StatusOr<std::vector<std::uint8_t>> ReadPage(VectorMeta& meta,
                                               std::uint64_t page,
                                               std::size_t from_node,
                                               sim::SimTime now,
                                               sim::SimTime* done,
                                               std::uint64_t* version = nullptr,
                                               bool optimistic_fallback = false);

  /// Lock-free read fast path (DESIGN.md §14): serves a whole-page read on
  /// the calling thread, bypassing the worker queues entirely. The
  /// directory entry is sampled, the bytes are copied straight out of the
  /// source node's scache (its BufferManager is internally synchronized),
  /// and the directory version is re-sampled; a changed version means a
  /// racing writer and the copy is retried (bounded), then abandoned.
  /// Sources follow the §6 replica-validity rule: the page's primary node,
  /// or a node the directory registers as a replica — never a stale cache.
  /// Returns nullopt — caller falls back to ReadPage — on: miss (unplaced
  /// page), version conflict after retries, ineligible coherence mode,
  /// fenced source, CRC mismatch (the slow path heals it), or the
  /// `enable_optimistic_reads` switch being off. On success charges the
  /// metadata round trips plus the owner→reader transfer when remote, and
  /// counts mm.readpath.fastpath_hit_count / retry_count on `from_node`.
  std::optional<std::vector<std::uint8_t>> TryReadPageOptimistic(
      VectorMeta& meta, std::uint64_t page, std::size_t from_node,
      sim::SimTime now, sim::SimTime* done, std::uint64_t* version = nullptr,
      int* retries = nullptr);

  /// Current write-version of a page per the metadata manager (0 when the
  /// page has never been placed). Charges the metadata round trip.
  std::uint64_t PageVersion(VectorMeta& meta, std::uint64_t page,
                            std::size_t from_node, sim::SimTime now,
                            sim::SimTime* done);

  /// An asynchronous page fetch started by the prefetcher.
  struct AsyncRead {
    std::shared_future<TaskOutcome> future;
    std::size_t owner = 0;
  };

  /// Starts an asynchronous page fetch (prefetch path). The caller charges
  /// itself nothing now; on completion it must add the owner→reader
  /// transfer when the owner is remote.
  AsyncRead ReadPageAsync(VectorMeta& meta, std::uint64_t page,
                          std::size_t from_node, sim::SimTime now);

  /// Idle estimate of reading one page from wherever it currently lives
  /// (prefetcher input). Unplaced pages are assumed to cost a PFS stage-in.
  double EstimateReadSeconds(VectorMeta& meta, std::uint64_t page,
                             std::uint64_t bytes);

  /// Asynchronous dirty-region commit (copy-on-write eviction/TxEnd path).
  /// The caller should charge itself only the copy cost; the returned
  /// future is for real-time ordering (TxEnd waits on it).
  std::shared_future<TaskOutcome> WriteRegion(VectorMeta& meta,
                                              std::uint64_t page,
                                              std::uint64_t offset,
                                              std::vector<std::uint8_t> bytes,
                                              std::size_t from_node,
                                              sim::SimTime now);

  /// Async importance-score update for the Data Organizer.
  void SubmitScore(VectorMeta& meta, std::uint64_t page, float score,
                   std::size_t from_node, sim::SimTime now);

  /// Stages all dirty pages of a vector to its backend; returns when
  /// persisted (real time). `*done` gets the last simulated completion.
  Status FlushVector(VectorMeta& meta, std::size_t from_node, sim::SimTime now,
                     sim::SimTime* done);

  /// Changes the coherence phase; leaving read-only invalidates replicas
  /// (paper §III-C "Changing Phases").
  Status ChangePhase(VectorMeta& meta, CoherenceMode new_mode,
                     std::size_t from_node, sim::SimTime now,
                     sim::SimTime* done);

  /// Destroys the shared object: drops all scache pages and metadata.
  /// The backend object is kept unless `remove_backend`.
  Status DestroyVector(VectorMeta& meta, bool remove_backend = false);

  /// Flushes every nonvolatile vector and stops all runtimes. Called by the
  /// destructor if not called explicitly. When the fault injector reports a
  /// simulated crash, the clean-exit flush is skipped: on-disk state stays
  /// exactly what the crash left (the ckpt crash tests build a new Service
  /// over the same directories and recover).
  void Shutdown();

  /// scache DRAM bytes in use across all nodes (for memory accounting).
  std::uint64_t ScacheDramUsed() const;

  // ---- internals shared with NodeRuntime ----
  VectorMeta* FindVectorById(std::uint64_t vector_id);
  /// Ensures the backend object exists with at least the vector's size.
  Status EnsureBackend(VectorMeta& meta);

 private:
  friend class NodeRuntime;

  /// Satellite recovery path for tier death: a dirty page whose redo record
  /// is durable in the failing node's journal is re-applied to the backend
  /// (idempotent) instead of being declared lost. Returns true when the
  /// backend now holds the journaled version.
  bool TryJournalRecover(std::size_t node, const storage::BlobId& id,
                         const storage::BlobLocation& loc);

  /// Folds the spans of the (last analyzed, now_s] window into the
  /// mm.critpath.* counters and mirrors the wall-source totals.
  void UpdateCritpathCounters(double now_s);

  sim::Cluster* cluster_;
  ServiceOptions options_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<storage::MetadataManager> metadata_;
  // Precedes runtimes_: workers consult the journals while executing.
  std::unique_ptr<ckpt::Coordinator> ckpt_;
  // Telemetry state must precede runtimes_: each NodeRuntime grabs its sink
  // during construction.
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> metrics_;
  std::unique_ptr<telemetry::TraceRecorder> trace_;
  std::unique_ptr<telemetry::EpochReporter> reporter_;
  // Lock order (MML101): report_mu_ is held across reporter_->epochs() in
  // MaybeEpochReport, which takes the reporter's own mutex.
  Mutex report_mu_ MM_ACQUIRED_BEFORE(telemetry::EpochReporter::mu_);
  double last_epoch_s_ MM_GUARDED_BY(report_mu_) = 0.0;
  /// Upper edge (virtual µs) of the last critpath-analyzed epoch window.
  double critpath_last_us_ MM_GUARDED_BY(report_mu_) = 0.0;
  std::function<std::pair<std::uint64_t, std::uint64_t>()> critpath_wall_
      MM_GUARDED_BY(report_mu_);
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;

  mutable Mutex lost_mu_;
  std::unordered_set<storage::BlobId, storage::BlobIdHash> lost_
      MM_GUARDED_BY(lost_mu_);

  /// Fenced (dead) nodes, excluded from page placement. Written once per
  /// death (release); placement paths acquire-load.
  std::vector<std::atomic<bool>> fenced_;
  RecoveryStats last_recovery_ MM_GUARDED_BY(lost_mu_);

  /// `node` when unfenced, else the next live node in ring order (placement
  /// remap around dead nodes).
  std::size_t Unfenced(std::size_t node) const;

  // Lock order (MML101): RegisterVector publishes backend_ready for a
  // freshly built meta while still holding the registration lock.
  Mutex vectors_mu_
      MM_ACQUIRED_BEFORE(VectorMeta::backend_mu, VectorMeta::hint_mu);
  std::map<std::string, std::unique_ptr<VectorMeta>> vectors_
      MM_GUARDED_BY(vectors_mu_);
  std::unordered_map<std::uint64_t, VectorMeta*> vectors_by_id_
      MM_GUARDED_BY(vectors_mu_);

  // Named distributed locks (GetDistributedLock). locks_mu_ only guards
  // the registry map — never held across an Acquire, so it takes no place
  // above DistributedLock::mu_ in the hierarchy.
  Mutex locks_mu_;
  std::map<std::string, std::unique_ptr<comm::DistributedLock>> dlocks_
      MM_GUARDED_BY(locks_mu_);

  // Per-node in-flight page-fault dedup: concurrent faults for the same
  // blob on one node share one fetch (also how MM_COLLECTIVE transactions
  // avoid overloading the owner).
  struct InflightKey {
    std::size_t node;
    storage::BlobId id;
    bool operator==(const InflightKey&) const = default;
  };
  struct InflightKeyHash {
    std::size_t operator()(const InflightKey& k) const {
      return HashCombine(k.id.Digest(), k.node);
    }
  };
  // Lock order (MML101): PageFault submits the fetch task to the owner's
  // runtime while holding the dedup lock, and Submit pushes onto a
  // BlockingQueue (which locks its own mutex).
  Mutex inflight_mu_ MM_ACQUIRED_BEFORE(BlockingQueue::mu_);
  std::unordered_map<InflightKey, std::shared_future<TaskOutcome>,
                     InflightKeyHash>
      inflight_ MM_GUARDED_BY(inflight_mu_);

  // Atomic (not merely guarded) because ~Service and an explicit Shutdown
  // may race from different threads; exchange() makes shutdown idempotent.
  std::atomic<bool> shut_down_{false};
  /// Set once any flight record was written; Shutdown's catch-all dump
  /// skips itself so the record closest to the death survives.
  std::atomic<bool> flight_dumped_{false};
};

}  // namespace mm::core
