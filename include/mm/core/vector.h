// mm::Vector<T> — the public MegaMmap shared-memory vector (paper §III-A,
// Listing 1). Presents an out-of-core, distributed, optionally persistent
// dataset as a byte-addressable array:
//
//   mm::core::Vector<Point3D> pts(svc, ctx, "spar:///points.parquet:f4x3");
//   pts.BoundMemory(MEGABYTES(1));
//   pts.Pgas(rank, nprocs);
//   auto& tx = pts.SeqTxBegin(pts.local_off(), pts.local_size(),
//                             MM_READ_ONLY);
//   for (const Point3D& p : tx) { ... }
//   pts.TxEnd();
//
// Element access faults pages into a per-process pcache; dirty fragments
// are committed copy-on-write through asynchronous MemoryTasks; the
// transaction drives Algorithm 1's eviction/prefetching.
//
// Hot loops should use the Span API (ReadSpan/WriteSpan): a span resolves
// each overlapping page once, pins the frames against eviction for its
// lifetime, charges the virtual clock in one batched Compute call, and
// marks dirty ranges per page — element access inside the span is plain
// pointer arithmetic (§III-E's amortized-resolution claim).
//
// Thread-affinity: a Vector instance belongs to one rank. Different ranks
// construct their own Vector with the same key to share the object.
#pragma once

#include <bit>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <type_traits>

#include "mm/comm/world.h"
#include "mm/core/optimistic_guard.h"
#include "mm/core/pcache.h"
#include "mm/core/prefetcher.h"
#include "mm/core/service.h"
#include "mm/core/transaction.h"

namespace mm::core {

template <typename T>
class Vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "mm::Vector elements must be trivially copyable (provide a "
                "POD mirror or serialize into one)");

 public:
  /// Connects to (or creates) the shared vector named `key`. For
  /// nonvolatile vectors backed by an existing object, the size comes from
  /// the backend; otherwise `count` elements are allocated (zero-filled on
  /// first touch).
  Vector(Service& service, comm::RankContext& ctx, const std::string& key,
         std::uint64_t count = 0, VectorOptions options = {})
      : service_(&service), ctx_(&ctx), options_(options) {
    auto meta = service.RegisterVector(key, sizeof(T), options, count);
    if (!meta.ok()) {
      throw std::runtime_error("mm::Vector: " + meta.status().ToString());
    }
    meta_ = *meta;
    pcache_ = std::make_unique<PCache>(
        meta_->page_bytes, meta_->elems_per_page(), options_.pcache_bytes,
        options_.optimistic_readers);
    epp_ = meta_->elems_per_page();
    if (epp_ > 0 && (epp_ & (epp_ - 1)) == 0) {
      epp_shift_ = std::countr_zero(epp_);
      epp_mask_ = epp_ - 1;
    }
    const auto& costs = ctx_->costs();
    scalar_access_cost_s_ = costs.memory_access_s + costs.mm_access_overhead_s;
    // Metric handles resolved once; the access paths below only do relaxed
    // atomic adds, and only at frame-resolution granularity (the last-page
    // cache keeps per-element accesses metric-free).
    telemetry::NodeSink tel = service.telemetry_sink(ctx.node());
    tel_ = tel;
    hit_count_ = tel.metrics->GetCounter("mm.pcache.hit_count");
    miss_count_ = tel.metrics->GetCounter("mm.pcache.miss_count");
    eviction_count_ = tel.metrics->GetCounter("mm.pcache.eviction_count");
    pin_stall_count_ = tel.metrics->GetCounter("mm.pcache.pin_stall_count");
    writeback_count_ = tel.metrics->GetCounter("mm.pcache.writeback_count");
    writeback_bytes_ = tel.metrics->GetCounter("mm.pcache.writeback_bytes");
    prefetch_issued_ = tel.metrics->GetCounter("mm.prefetch.issued_count");
    prefetch_useful_ = tel.metrics->GetCounter("mm.prefetch.useful_count");
    prefetch_wasted_ = tel.metrics->GetCounter("mm.prefetch.wasted_count");
    score_count_ = tel.metrics->GetCounter("mm.prefetch.score_count");
    readpath_hit_ = tel.metrics->GetCounter("mm.readpath.fastpath_hit_count");
    readpath_retry_ = tel.metrics->GetCounter("mm.readpath.retry_count");
  }

  // Paper semantics: vectors are NOT destroyed in the destructor; call
  // Destroy() explicitly (avoids races between processes finishing at
  // different times).
  ~Vector() = default;
  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;

  /// Caps the DRAM this process may spend caching this vector (Vec.Max).
  void BoundMemory(std::uint64_t bytes) {
    options_.pcache_bytes = bytes;
    pcache_->set_capacity(bytes);
  }

  /// Partitions elements evenly across `nprocs` processes (PGAS-style).
  /// Also registers the partition as a placement hint so unplaced pages
  /// first-touch onto the node of the rank that owns them.
  void Pgas(int rank, int nprocs) {
    MM_CHECK(nprocs > 0 && rank >= 0 && rank < nprocs);
    pgas_rank_ = rank;
    pgas_nprocs_ = nprocs;
    service_->SetPgasHint(
        *meta_, VectorMeta::PgasHint{size(), nprocs,
                                     ctx_->world().ranks_per_node()});
  }

  std::uint64_t local_off() const {
    std::uint64_t n = size(), p = pgas_nprocs_, r = pgas_rank_;
    std::uint64_t base = n / p, rem = n % p;
    return r * base + std::min<std::uint64_t>(r, rem);
  }
  std::uint64_t local_size() const {
    std::uint64_t n = size(), p = pgas_nprocs_, r = pgas_rank_;
    std::uint64_t base = n / p, rem = n % p;
    return base + (r < rem ? 1 : 0);
  }

  std::uint64_t size() const { return meta_->num_elements(); }
  std::uint64_t size_bytes() const {
    return meta_->size_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t page_bytes() const { return meta_->page_bytes; }
  std::uint64_t elems_per_page() const { return epp_; }
  /// Largest span window that stays comfortably inside the cache bound:
  /// half the frame budget (at least one page) worth of elements. Hot
  /// loops chunk their scans by this.
  std::uint64_t MaxSpanElems() const {
    std::uint64_t frames = pcache_->capacity() / meta_->page_bytes;
    return std::max<std::uint64_t>(frames / 2, 1) * epp_;
  }
  const std::string& key() const { return meta_->key; }
  CoherenceMode mode() const {
    return meta_->mode.load(std::memory_order_relaxed);
  }

  // ---- transactional memory API ----

  /// Iterable view of the active transaction's access sequence.
  class TxHandle;

  /// Declares a sequential scan over elements [off, off+count).
  TxHandle SeqTxBegin(std::uint64_t off, std::uint64_t count,
                      std::uint32_t flags) {
    BeginTx(std::make_unique<SeqTx>(flags, sizeof(T), meta_->elems_per_page(),
                                    off, count));
    return TxHandle(this);
  }

  /// Declares `count` pseudo-random accesses over [lo, hi), reproducible
  /// from `seed`.
  TxHandle RandTxBegin(std::uint64_t lo, std::uint64_t hi, std::uint64_t count,
                       std::uint32_t flags, std::uint64_t seed) {
    BeginTx(std::make_unique<RandTx>(flags, sizeof(T), meta_->elems_per_page(),
                                     lo, hi, count, seed));
    return TxHandle(this);
  }

  /// Declares a strided scan: off, off+stride, ... (count accesses).
  TxHandle StrideTxBegin(std::uint64_t off, std::uint64_t stride,
                         std::uint64_t count, std::uint32_t flags) {
    BeginTx(std::make_unique<StrideTx>(flags, sizeof(T),
                                       meta_->elems_per_page(), off, stride,
                                       count));
    return TxHandle(this);
  }

  /// Installs a user-defined transaction (custom subclass, paper §III-A).
  void TxBegin(std::unique_ptr<Transaction> tx) { BeginTx(std::move(tx)); }

  /// Ends the transaction: commits all unflushed modifications (the commit
  /// is asynchronous in simulated time; real execution waits so later
  /// readers observe the writes after the application's synchronization).
  /// Spans created under the transaction must be destroyed first.
  void TxEnd() {
    MM_CHECK_MSG(tx_ != nullptr, "TxEnd without active transaction");
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    tel_.trace->Complete(tx_->writes() ? "tx_write" : "tx_read", "tx",
                         tel_.node, ctx_->rank(), tx_begin_s_,
                         ctx_->clock().now());
    tx_.reset();
  }

  Transaction* active_tx() { return tx_.get(); }

  // ---- span access (hot-loop fast path) ----

  /// A pinned window over elements [lo, hi). While the span lives, every
  /// overlapping page frame is pinned: the prefetcher's eviction pass and
  /// MakeRoom skip it, so raw pointers into the frames stay valid. Element
  /// access is pointer arithmetic — no per-access clock charge, hash
  /// lookup, or transaction bookkeeping (all batched at construction).
  ///
  /// Contract: index arguments must lie in [begin_index(), end_index());
  /// the window should be comfortably smaller than BoundMemory (pinning
  /// more than the cap forces the cache over its budget); spans must not
  /// outlive the Vector, Destroy(), or a ChangePhase().
  class Span {
   public:
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& o) noexcept
        : vec_(o.vec_),
          lo_(o.lo_),
          hi_(o.hi_),
          first_page_(o.first_page_),
          writable_(o.writable_),
          pages_(std::move(o.pages_)) {
      o.vec_ = nullptr;
      o.pages_.clear();
    }
    Span& operator=(Span&&) = delete;
    ~Span() {
      if (vec_ != nullptr) vec_->ReleaseSpan(*this);
    }

    std::uint64_t begin_index() const { return lo_; }
    std::uint64_t end_index() const { return hi_; }
    std::uint64_t size() const { return hi_ - lo_; }
    bool writable() const { return writable_; }

    /// Access by global element index (must be in [lo, hi); unchecked).
    T& operator[](std::uint64_t i) {
      std::uint64_t elem;
      std::uint64_t page = vec_->PageOf(i, &elem);
      return pages_[page - first_page_][elem];
    }
    const T& operator[](std::uint64_t i) const {
      std::uint64_t elem;
      std::uint64_t page = vec_->PageOf(i, &elem);
      return pages_[page - first_page_][elem];
    }

    class Iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = T;
      using difference_type = std::ptrdiff_t;
      using pointer = T*;
      using reference = T&;

      Iterator(Span* span, std::uint64_t i) : span_(span), i_(i) {}
      T& operator*() const { return (*span_)[i_]; }
      Iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const Iterator& o) const { return i_ != o.i_; }
      bool operator==(const Iterator& o) const { return i_ == o.i_; }
      std::uint64_t index() const { return i_; }

     private:
      Span* span_;
      std::uint64_t i_;
    };

    Iterator begin() { return Iterator(this, lo_); }
    Iterator end() { return Iterator(this, hi_); }

   private:
    friend class Vector;
    Span(Vector* vec, std::uint64_t lo, std::uint64_t hi, bool writable)
        : vec_(vec), lo_(lo), hi_(hi), writable_(writable) {}

    Vector* vec_;
    std::uint64_t lo_;
    std::uint64_t hi_;
    std::uint64_t first_page_ = 0;
    bool writable_;
    /// Base pointer (element 0) of each pinned overlapping page.
    std::vector<T*> pages_;
  };

  /// Read-only span over [lo, hi): pages are resolved and pinned once, the
  /// clock is charged once, and no element is dirtied.
  Span ReadSpan(std::uint64_t lo, std::uint64_t hi) {
    return MakeSpan(lo, hi, /*writable=*/false);
  }

  /// Writable span over [lo, hi): like ReadSpan, but the covered range of
  /// every page is marked dirty up front (per-page ranges, not per-element
  /// bits), with or without an active transaction. The whole range counts
  /// as written even if the caller stores to only part of it.
  Span WriteSpan(std::uint64_t lo, std::uint64_t hi) {
    return MakeSpan(lo, hi, /*writable=*/true);
  }

  // ---- element access ----

  /// Faulting element access. Under a writing transaction the touched
  /// element is marked dirty. The reference stays valid until the next
  /// MegaMmap call on this vector.
  T& At(std::uint64_t i) {
    MM_CHECK_MSG(i < size(), "mm::Vector index out of range");
    std::uint64_t elem;
    const std::uint64_t page = PageOf(i, &elem);
    // Read-mostly intent: a non-writing transaction's At() never dirties,
    // so its misses qualify for the optimistic service bypass.
    PageFrame* frame =
        TouchFrame(page, /*read_intent=*/tx_ != nullptr && !tx_->writes());
    ctx_->Compute(scalar_access_cost_s_);
    if (tx_ != nullptr) {
      if (tx_->writes()) pcache_->MarkElemDirty(frame, elem);
      tx_->AdvanceTail();
    }
    return *reinterpret_cast<T*>(frame->data.data() + elem * sizeof(T));
  }

  T& operator[](std::uint64_t i) { return At(i); }

  /// Read-only access: never dirties the element even inside a writing
  /// transaction.
  const T& Read(std::uint64_t i) {
    MM_CHECK_MSG(i < size(), "mm::Vector index out of range");
    std::uint64_t elem;
    const std::uint64_t page = PageOf(i, &elem);
    PageFrame* frame = TouchFrame(page, /*read_intent=*/true);
    ctx_->Compute(scalar_access_cost_s_);
    if (tx_ != nullptr) tx_->AdvanceTail();
    return *reinterpret_cast<const T*>(frame->data.data() + elem * sizeof(T));
  }

  /// Explicit write (dirties the element with or without a transaction).
  void Set(std::uint64_t i, const T& value) {
    MM_CHECK_MSG(i < size(), "mm::Vector index out of range");
    std::uint64_t elem;
    const std::uint64_t page = PageOf(i, &elem);
    PageFrame* frame = TouchFrame(page, /*read_intent=*/false);
    ctx_->Compute(scalar_access_cost_s_);
    pcache_->MarkElemDirty(frame, elem);
    if (tx_ != nullptr) tx_->AdvanceTail();
    if (options_.optimistic_readers) {
      // Concurrent TryReadOptimistic readers may be copying this frame:
      // bracket the store in a seqlock write section so an overlapped read
      // can never validate a torn element. A live Span pin holds the latch
      // odd; a nested write section would flip it even mid-span, so scalar
      // Set and a Span on the same page must not mix.
      MM_CHECK_MSG(frame->pins.load(std::memory_order_relaxed) == 0,
                   "Set on a span-pinned page with optimistic_readers on");
      FrameWriteGuard wg(frame);
      OptimisticGuard::StoreBytes(*frame, elem * sizeof(T), &value, sizeof(T));
    } else {
      // mm-verify: allow(MML103 optimistic_readers off: no concurrent frame readers to tear)
      std::memcpy(frame->data.data() + elem * sizeof(T), &value, sizeof(T));
    }
  }

  /// Lock-free cross-thread element read (DESIGN.md §14). Safe to call from
  /// any thread while the owning rank mutates the vector, PROVIDED the
  /// vector was created with `optimistic_readers` on (otherwise the owner's
  /// scalar stores are unguarded and this returns false immediately). Never
  /// faults, never touches the LRU, never charges the virtual clock: on a
  /// non-resident page, an index overflow, or a persistently-racing writer
  /// it returns false and the caller falls back to the owner's path.
  /// `*retries` (optional) accumulates validation conflicts.
  bool TryReadOptimistic(std::uint64_t i, T* out, int* retries = nullptr) const {
    if (!options_.optimistic_readers || i >= size()) return false;
    std::uint64_t elem;
    const std::uint64_t page = PageOf(i, &elem);
    constexpr int kMaxAttempts = 3;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      const PageFrame* frame = pcache_->PeekFrame(page);
      if (frame == nullptr) return false;  // miss: nothing to retry against
      OptimisticGuard guard(*frame);
      if (!guard.valid() || guard.page() != page) {
        // Odd seq (writer in section / retired) or a recycled frame now
        // holding another page: re-probe the index.
        if (retries != nullptr) ++*retries;
        readpath_retry_->Inc();
        continue;
      }
      alignas(T) std::uint8_t buf[sizeof(T)];
      guard.ReadBytes(elem * sizeof(T), buf, sizeof(T));
      if (guard.Validate()) {
        std::memcpy(out, buf, sizeof(T));
        readpath_hit_->Inc();
        return true;
      }
      if (retries != nullptr) ++*retries;
      readpath_retry_->Inc();
    }
    return false;
  }

  /// Atomically extends the vector by one element; returns its index.
  std::uint64_t Append(const T& value) {
    std::uint64_t off =
        meta_->size_bytes.fetch_add(sizeof(T), std::memory_order_relaxed);
    std::uint64_t idx = off / sizeof(T);
    Set(idx, value);
    return idx;
  }

  // ---- persistence & lifecycle ----

  /// Synchronously commits this process's modifications to the scache and
  /// stages the vector's dirty pages to the backend.
  void Flush() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    sim::SimTime done = ctx_->clock().now();
    Status st =
        service_->FlushVector(*meta_, ctx_->node(), ctx_->clock().now(), &done);
    if (!st.ok()) throw std::runtime_error("Flush: " + st.ToString());
    ctx_->clock().AdvanceTo(done);
  }

  /// Commits this process's local modifications to the shared cache (no
  /// backend staging). Equivalent to the commit half of TxEnd; useful for
  /// non-transactional writes (Append/Set) before a synchronization point.
  void Commit() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
  }

  /// Commits local modifications and stages dirty pages without stalling
  /// the simulated clock: the staging engine drains in the background
  /// (paper §III-B "MegaMmap actively flushes modified data to storage
  /// during periods of computation"). Real execution still completes the
  /// staging before returning, so the data is durable.
  void FlushAsync() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    Status st = service_->FlushVector(*meta_, ctx_->node(),
                                      ctx_->clock().now(), nullptr);
    if (!st.ok()) throw std::runtime_error("FlushAsync: " + st.ToString());
  }

  /// Changes the coherence phase at a synchronization point. Leaving
  /// read-only invalidates replicas. Live spans keep their frames resident
  /// (pinned pages are skipped) but see no invalidation — end spans first.
  void ChangePhase(CoherenceMode new_mode) {
    // Local modifications must be committed under the old phase's rules.
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    sim::SimTime done = ctx_->clock().now();
    Status st = service_->ChangePhase(*meta_, new_mode, ctx_->node(),
                                      ctx_->clock().now(), &done);
    if (!st.ok()) throw std::runtime_error("ChangePhase: " + st.ToString());
    ctx_->clock().AdvanceTo(done);
    // In-flight prefetches were routed and versioned under the old phase;
    // adopting one after the switch could resurrect invalidated data.
    prefetch_wasted_->Inc(pcache_->DropPendings());
    // Replicas this rank was reading may be gone.
    last_page_ = kNoPage;
    last_frame_ = nullptr;
    for (std::uint64_t page : pcache_->ResidentPages()) {
      if (pcache_->IsPinned(page)) continue;
      PageFrame* f = pcache_->Find(page);
      if (f != nullptr && !f->dirty.Any()) {
        // The retired frame keeps its buffer parked on the free list (a
        // racing optimistic reader must dereference live memory); the next
        // Insert recycles it through the pool.
        pcache_->Remove(page);
      }
    }
  }

  /// Destroys the shared object (all processes' view of it). Explicit by
  /// design. The backend object is kept unless `remove_backend`.
  void Destroy(bool remove_backend = false) {
    WaitOutstanding();
    // Pending prefetches dropped here were fetched for nothing.
    prefetch_wasted_->Inc(pcache_->num_pending());
    pcache_->Clear();
    last_page_ = kNoPage;
    last_frame_ = nullptr;
    Status st = service_->DestroyVector(*meta_, remove_backend);
    if (!st.ok()) throw std::runtime_error("Destroy: " + st.ToString());
  }

  // ---- stats ----
  std::uint64_t faults() const { return faults_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t prefetches() const { return prefetches_; }
  PCache& pcache() { return *pcache_; }
  VectorMeta& meta() { return *meta_; }

  // ---- TxHandle / iterator ----

  class TxIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    TxIterator(Vector* vec, std::size_t pos) : vec_(vec), pos_(pos) {}
    T& operator*() {
      return vec_->At(vec_->tx_->ElementAt(pos_));
    }
    TxIterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const TxIterator& other) const {
      return pos_ != other.pos_;
    }
    bool operator==(const TxIterator& other) const {
      return pos_ == other.pos_;
    }
    std::size_t pos() const { return pos_; }

   private:
    Vector* vec_;
    std::size_t pos_;
  };

  /// Iterating a TxHandle visits the transaction's access sequence:
  /// `for (T& x : tx) ...`.
  class TxHandle {
   public:
    explicit TxHandle(Vector* vec) : vec_(vec) {}
    TxIterator begin() { return TxIterator(vec_, 0); }
    TxIterator end() {
      return TxIterator(vec_, vec_->tx_->TotalAccesses());
    }
    Transaction& tx() { return *vec_->tx_; }

   private:
    Vector* vec_;
  };

 private:
  static constexpr std::uint64_t kNoPage = ~0ULL;

  /// Splits a global element index into (page, elem-in-page). Power-of-two
  /// pages use shift/mask; others pay one division.
  std::uint64_t PageOf(std::uint64_t i, std::uint64_t* elem) const {
    if (epp_shift_ >= 0) {
      *elem = i & epp_mask_;
      return i >> epp_shift_;
    }
    *elem = i % epp_;
    return i / epp_;
  }

  bool TailOnPageBoundary() const {
    std::size_t t = tx_->tail();
    return epp_shift_ >= 0 ? (t & epp_mask_) == 0 : (t % epp_) == 0;
  }

  /// Common access prologue: run the prefetcher at page-boundary ticks and
  /// resolve the frame through the last-page cache (§III-E: iterative
  /// algorithms usually stay within one page for many accesses).
  PageFrame* TouchFrame(std::uint64_t page, bool read_intent) {
    // Run the prefetcher BEFORE taking a frame reference: its eviction pass
    // may drop pages (including, for unaligned scans, this one — which then
    // simply refaults below).
    if (tx_ != nullptr && options_.prefetch_depth > 0 && TailOnPageBoundary()) {
      PrefetchStep();
    }
    PageFrame* frame = (page == last_page_ && last_frame_ != nullptr)
                           ? last_frame_
                           : FetchFrame(page, read_intent);
    last_page_ = page;
    last_frame_ = frame;
    return frame;
  }

  void BeginTx(std::unique_ptr<Transaction> tx) {
    MM_CHECK_MSG(tx_ == nullptr,
                 "nested transactions on one vector are not supported");
    tx_ = std::move(tx);
    tx_begin_s_ = ctx_->clock().now();
    AcquireCoherence();
    if (options_.prefetch_depth > 0 && service_->options().enable_prefetch) {
      PrefetchStep();  // warm the initial window
    }
  }

  /// Acquire semantics at transaction begin: under globally-writable
  /// coherence modes, cached clean pages whose write-version moved on are
  /// dropped so this transaction observes other ranks' committed updates.
  /// Read-only and local modes never invalidate (nobody else wrote); dirty
  /// frames are this rank's own uncommitted data and are kept.
  void AcquireCoherence() {
    CoherenceMode mode = meta_->mode.load(std::memory_order_relaxed);
    if (!tx_->reads() || !RequiresOrderedWrites(mode)) return;
    // Batch the version queries: one coalesced metadata request per home
    // shard instead of a round trip per page.
    std::vector<std::uint64_t> pages;
    std::vector<storage::BlobId> ids;
    for (std::uint64_t page : pcache_->ResidentPages()) {
      if (pcache_->IsPinned(page)) continue;  // live span holds pointers
      PageFrame* frame = pcache_->Find(page);
      if (frame == nullptr || frame->dirty.Any()) continue;
      pages.push_back(page);
      ids.push_back(storage::BlobId{meta_->vector_id, page});
    }
    if (ids.empty()) return;
    sim::SimTime done = ctx_->clock().now();
    auto locs = service_->metadata().LookupBatch(ids, ctx_->node(),
                                                 ctx_->clock().now(), &done);
    ctx_->clock().AdvanceTo(done);
    for (std::size_t i = 0; i < pages.size(); ++i) {
      PageFrame* frame = pcache_->Find(pages[i]);
      if (frame == nullptr) continue;
      std::uint64_t current = locs[i].has_value() ? locs[i]->version : 0;
      if (current != OptimisticGuard::Version(*frame)) {
        pcache_->Remove(pages[i]);  // buffer stays parked on the free list
        if (pages[i] == last_page_) {
          last_page_ = kNoPage;
          last_frame_ = nullptr;
        }
      }
    }
  }

  Span MakeSpan(std::uint64_t lo, std::uint64_t hi, bool writable) {
    MM_CHECK_MSG(lo <= hi && hi <= size(), "mm::Vector span out of range");
    Span span(this, lo, hi, writable);
    if (lo == hi) return span;
    // One prefetcher invocation covers the whole window (the scalar path
    // runs it at every page-boundary access).
    if (tx_ != nullptr && options_.prefetch_depth > 0) PrefetchStep();
    std::uint64_t elem_lo, elem_hi;
    const std::uint64_t first = PageOf(lo, &elem_lo);
    const std::uint64_t last = PageOf(hi - 1, &elem_hi);
    span.first_page_ = first;
    span.pages_.reserve(last - first + 1);
    for (std::uint64_t p = first; p <= last; ++p) {
      PageFrame* frame = FetchFrame(p, /*read_intent=*/!writable);
      pcache_->Pin(p);
      span.pages_.push_back(reinterpret_cast<T*>(frame->data.data()));
      if (writable) {
        std::size_t dlo = (p == first) ? elem_lo : 0;
        std::size_t dhi = (p == last) ? elem_hi + 1 : epp_;
        pcache_->MarkDirty(p, dlo, dhi);
      }
    }
    // Batched clock charge: the software overhead is amortized per page
    // instead of per element (the paper's ~2.44%-over-mmap claim).
    const auto& costs = ctx_->costs();
    const std::uint64_t n = hi - lo;
    ctx_->Compute(static_cast<double>(n) * costs.memory_access_s +
                  static_cast<double>(span.pages_.size()) *
                      costs.mm_access_overhead_s);
    if (tx_ != nullptr) tx_->AdvanceTail(n);
    return span;
  }

  void ReleaseSpan(Span& span) {
    const std::uint64_t n_pages = span.pages_.size();
    for (std::uint64_t p = 0; p < n_pages; ++p) {
      pcache_->Unpin(span.first_page_ + p);
    }
  }

  PageFrame* FetchFrame(std::uint64_t page, bool read_intent = false) {
    if (PageFrame* f = pcache_->Find(page)) {
      hit_count_->Inc();
      return f;
    }
    miss_count_->Inc();
    // Read-your-writes: if this rank evicted dirty data for this page and
    // the async commit has not landed yet, wait for it (real time only —
    // the commit is still asynchronous in simulated time).
    WaitPage(page);
    std::vector<std::uint8_t> data;
    std::uint64_t version = 0;
    if (auto pending = pcache_->TakePending(page)) {
      // A demand access adopting an in-flight prefetch is what makes the
      // prefetch useful; pendings dropped unadopted count as wasted.
      prefetch_useful_->Inc();
      // A prefetch already fetched (or is fetching) this page: the access
      // only stalls for whatever part of the fetch has not overlapped with
      // compute.
      TaskOutcome outcome = pending->future.get();
      if (!outcome.status.ok()) {
        throw std::runtime_error("prefetch failed: " +
                                 outcome.status.ToString());
      }
      sim::SimTime done = outcome.done;
      if (pending->remote) {
        auto rsp = service_->cluster().network().Transfer(
            done, pending->owner, ctx_->node(), outcome.data.size());
        done = rsp.delivered;
        service_->MaybeReplicate(*meta_, page, outcome.data, ctx_->node(),
                                 done);
      }
      const sim::SimTime wait_start = ctx_->clock().now();
      ctx_->clock().AdvanceTo(done);
      if (done > wait_start) {
        // The part of the prefetch that did not overlap with compute is a
        // real stall; the critical-path analyzer charges bare cat="fault"
        // spans (no flow) as data-movement wait.
        tel_.trace->Complete("prefetch_wait", "fault", tel_.node,
                             ctx_->rank(), wait_start, done);
      }
      data = std::move(outcome.data);
      version = outcome.version;
    } else {
      // Page fault. Read intents first try the lock-free fast path: a
      // directly-copied, version-validated read that never enters a worker
      // queue (DESIGN.md §14). Everything else — and every fast-path
      // decline — takes the synchronous routed fault.
      ++faults_;
      ctx_->Compute(ctx_->costs().page_fault_soft_s);
      bool attempted = false;
      bool fetched = false;
      if (read_intent && service_->options().enable_optimistic_reads &&
          AllowsOptimisticReads(meta_->mode.load(std::memory_order_relaxed))) {
        attempted = true;
        const sim::SimTime fast_start = ctx_->clock().now();
        sim::SimTime fast_done = fast_start;
        if (auto fast = service_->TryReadPageOptimistic(
                *meta_, page, ctx_->node(), fast_start, &fast_done,
                &version)) {
          ctx_->clock().AdvanceTo(fast_done);
          if (fast_done > fast_start) {
            // Same treatment as prefetch_wait: a bare fault-cat span the
            // analyzer counts as data-movement stall.
            tel_.trace->Complete("opt_read", "fault", tel_.node, ctx_->rank(),
                                 fast_start, fast_done);
          }
          data = std::move(*fast);
          fetched = true;
        }
      }
      if (!fetched) {
        sim::SimTime done = ctx_->clock().now();
        auto data_or = service_->ReadPage(*meta_, page, ctx_->node(),
                                          ctx_->clock().now(), &done, &version,
                                          /*optimistic_fallback=*/attempted);
        if (!data_or.ok()) {
          throw std::runtime_error("page fault failed: " +
                                   data_or.status().ToString());
        }
        ctx_->clock().AdvanceTo(done);
        data = std::move(data_or).value();
      }
    }
    MakeRoom();
    std::vector<std::uint8_t> displaced;
    PageFrame* frame = pcache_->Insert(page, std::move(data), &displaced);
    // A recycled frame's previous buffer goes back to the node pool so the
    // zero-alloc fetch loop (DESIGN.md §7) stays closed.
    if (displaced.capacity() > 0) ReleasePageBytes(std::move(displaced));
    OptimisticGuard::SetVersion(*frame, version);
    return frame;
  }

  /// Evicts until one more page fits under the BoundMemory cap, counting
  /// in-flight prefetches (committed) so they cannot overshoot capacity.
  /// Stops early when everything evictable is pinned by live spans.
  void MakeRoom() {
    while (pcache_->NeedsEviction()) {
      auto victim = pcache_->PickVictim();
      if (!victim.has_value()) {
        // Everything evictable is pinned by live spans: the cache runs over
        // its bound until a span ends. Surfaced as a pin stall.
        pin_stall_count_->Inc();
        break;
      }
      EvictPage(*victim);
    }
  }

  /// Evicts one page; dirty fragments become async writer MemoryTasks. The
  /// application pays only the copy (paper §III-B "Lifecycle of Modified
  /// Data"). The page buffer returns to the node's pool for the next fetch.
  void EvictPage(std::uint64_t page) {
    // The retired frame (and its buffer) stays alive on the pcache free
    // list: a racing optimistic reader dereferences live memory and fails
    // validation. Its dirty runs are still this rank's to ship.
    PageFrame* frame = pcache_->Remove(page);
    if (frame == nullptr) return;
    if (page == last_page_) {
      last_page_ = kNoPage;
      last_frame_ = nullptr;
    }
    ++evictions_;
    eviction_count_->Inc();
    if (frame->dirty.Any()) {
      ShipDirtyRuns(page, *frame);
    }
  }

  /// Sends each dirty run of a frame as a partial-page write task. The
  /// frame's dirty bits are left set; resident frames are reset via
  /// PCache::MarkClean (keeping the LRU lists in sync), detached frames
  /// are discarded wholesale.
  void ShipDirtyRuns(std::uint64_t page, PageFrame& frame) {
    const std::size_t es = sizeof(T);
    PagePool& pool = service_->runtime(ctx_->node()).pool();
    frame.dirty.ForEachRun([&](std::size_t lo, std::size_t hi) {
      std::uint64_t off = lo * es;
      std::uint64_t len = (hi - lo) * es;
      std::vector<std::uint8_t> bytes = pool.Acquire(len);
      std::memcpy(bytes.data(), frame.data.data() + off, len);
      writeback_count_->Inc();
      writeback_bytes_->Inc(len);
      ctx_->Compute(static_cast<double>(len) / ctx_->costs().memcpy_Bps);
      outstanding_.emplace_back(
          page, service_->WriteRegion(*meta_, page, off, std::move(bytes),
                                      ctx_->node(), ctx_->clock().now()));
    });
  }

  /// Commits dirty frames; frames stay resident (clean) when `retain`.
  void FlushDirtyFrames(bool retain) {
    for (std::uint64_t page : pcache_->DirtyPages()) {
      PageFrame* frame = pcache_->Find(page);
      MM_CHECK(frame != nullptr);
      ShipDirtyRuns(page, *frame);
      if (retain || pcache_->IsPinned(page)) {
        pcache_->MarkClean(page);
      } else {
        pcache_->Remove(page);  // buffer stays parked on the free list
        if (page == last_page_) {
          last_page_ = kNoPage;
          last_frame_ = nullptr;
        }
      }
    }
  }

  /// Recycles an evicted frame's buffer through the node's page pool so
  /// the next fetch on this node reuses it instead of allocating.
  void ReleasePageBytes(std::vector<std::uint8_t>&& data) {
    service_->runtime(ctx_->node()).pool().Release(std::move(data));
  }

  /// Real-time wait for outstanding async commits (no virtual charge: the
  /// writes are asynchronous in simulated time).
  void WaitOutstanding() {
    for (auto& [page, f] : outstanding_) {
      TaskOutcome outcome = f.get();
      if (!outcome.status.ok()) {
        throw std::runtime_error("async commit failed: " +
                                 outcome.status.ToString());
      }
      // The frame may adopt the committed version only when no other
      // rank's write landed in between (its bytes would be missing here).
      if (PageFrame* frame = pcache_->Find(page)) {
        if (outcome.prev_version == OptimisticGuard::Version(*frame)) {
          OptimisticGuard::SetVersion(*frame, outcome.version);
        }
      }
    }
    outstanding_.clear();
  }

  /// Waits for (and retires) outstanding commits targeting one page.
  void WaitPage(std::uint64_t page) {
    auto it = outstanding_.begin();
    while (it != outstanding_.end()) {
      if (it->first == page) {
        TaskOutcome outcome = it->second.get();
        if (!outcome.status.ok()) {
          throw std::runtime_error("async commit failed: " +
                                   outcome.status.ToString());
        }
        if (PageFrame* frame = pcache_->Find(page)) {
          if (outcome.prev_version == OptimisticGuard::Version(*frame)) {
            OptimisticGuard::SetVersion(*frame, outcome.version);
          }
        }
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// One Algorithm 1 invocation.
  void PrefetchStep() {
    if (tx_ == nullptr || !service_->options().enable_prefetch) return;
    PrefetchVecState state;
    state.max_bytes = options_.pcache_bytes;
    state.cur_bytes = pcache_->committed();
    state.page_bytes = meta_->page_bytes;
    PrefetcherOps ops;
    ops.set_score = [&](std::uint64_t page, float score) {
      score_count_->Inc();
      service_->SubmitScore(*meta_, page, score, ctx_->node(),
                            ctx_->clock().now());
    };
    ops.evict_page = [&](std::uint64_t page) {
      // Pages pinned by a live span survive the eviction pass.
      if (pcache_->Contains(page) && !pcache_->IsPinned(page)) EvictPage(page);
    };
    ops.fetch_ahead = [&](std::uint64_t page) {
      if (page * epp_ >= size()) return;
      auto ar = service_->ReadPageAsync(*meta_, page, ctx_->node(),
                                        ctx_->clock().now());
      ++prefetches_;
      prefetch_issued_->Inc();
      pcache_->AddPending(page,
                          PendingFetch{std::move(ar.future), ar.owner,
                                       ar.owner != ctx_->node()});
    };
    ops.cached_or_pending = [&](std::uint64_t page) {
      return pcache_->Contains(page) || pcache_->HasPending(page);
    };
    ops.est_read_seconds = [&](std::uint64_t page, std::uint64_t bytes) {
      return service_->EstimateReadSeconds(*meta_, page, bytes);
    };
    Prefetcher::Step(state, *tx_, options_.min_score, ops);
  }

  Service* service_;
  comm::RankContext* ctx_;
  VectorOptions options_;
  VectorMeta* meta_ = nullptr;
  std::unique_ptr<PCache> pcache_;
  std::unique_ptr<Transaction> tx_;
  std::vector<std::pair<std::uint64_t, std::shared_future<TaskOutcome>>>
      outstanding_;
  std::uint64_t last_page_ = kNoPage;
  PageFrame* last_frame_ = nullptr;
  // Strength-reduced address math for the scalar path: elems-per-page is
  // cached (meta_->elems_per_page() divides on every call), with shift/mask
  // for power-of-two page geometries, and the per-access clock charge is
  // folded into one constant.
  std::uint64_t epp_ = 0;
  int epp_shift_ = -1;
  std::uint64_t epp_mask_ = 0;
  double scalar_access_cost_s_ = 0.0;
  int pgas_rank_ = 0;
  int pgas_nprocs_ = 1;
  std::uint64_t faults_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t prefetches_ = 0;
  // Cached telemetry handles (see the constructor for the name catalog).
  telemetry::Counter* hit_count_ = nullptr;
  telemetry::Counter* miss_count_ = nullptr;
  telemetry::Counter* eviction_count_ = nullptr;
  telemetry::Counter* pin_stall_count_ = nullptr;
  telemetry::Counter* writeback_count_ = nullptr;
  telemetry::Counter* writeback_bytes_ = nullptr;
  telemetry::Counter* prefetch_issued_ = nullptr;
  telemetry::Counter* prefetch_useful_ = nullptr;
  telemetry::Counter* prefetch_wasted_ = nullptr;
  telemetry::Counter* score_count_ = nullptr;
  telemetry::Counter* readpath_hit_ = nullptr;
  telemetry::Counter* readpath_retry_ = nullptr;
  telemetry::NodeSink tel_ = telemetry::NodeSink::Dummy();
  sim::SimTime tx_begin_s_ = 0.0;
};

}  // namespace mm::core
