// mm::Vector<T> — the public MegaMmap shared-memory vector (paper §III-A,
// Listing 1). Presents an out-of-core, distributed, optionally persistent
// dataset as a byte-addressable array:
//
//   mm::core::Vector<Point3D> pts(svc, ctx, "spar:///points.parquet:f4x3");
//   pts.BoundMemory(MEGABYTES(1));
//   pts.Pgas(rank, nprocs);
//   auto& tx = pts.SeqTxBegin(pts.local_off(), pts.local_size(),
//                             MM_READ_ONLY);
//   for (const Point3D& p : tx) { ... }
//   pts.TxEnd();
//
// Element access faults pages into a per-process pcache; dirty fragments
// are committed copy-on-write through asynchronous MemoryTasks; the
// transaction drives Algorithm 1's eviction/prefetching.
//
// Thread-affinity: a Vector instance belongs to one rank. Different ranks
// construct their own Vector with the same key to share the object.
#pragma once

#include <cstring>
#include <memory>
#include <stdexcept>
#include <type_traits>

#include "mm/comm/world.h"
#include "mm/core/pcache.h"
#include "mm/core/prefetcher.h"
#include "mm/core/service.h"
#include "mm/core/transaction.h"

namespace mm::core {

template <typename T>
class Vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "mm::Vector elements must be trivially copyable (provide a "
                "POD mirror or serialize into one)");

 public:
  /// Connects to (or creates) the shared vector named `key`. For
  /// nonvolatile vectors backed by an existing object, the size comes from
  /// the backend; otherwise `count` elements are allocated (zero-filled on
  /// first touch).
  Vector(Service& service, comm::RankContext& ctx, const std::string& key,
         std::uint64_t count = 0, VectorOptions options = {})
      : service_(&service), ctx_(&ctx), options_(options) {
    auto meta = service.RegisterVector(key, sizeof(T), options, count);
    if (!meta.ok()) {
      throw std::runtime_error("mm::Vector: " + meta.status().ToString());
    }
    meta_ = *meta;
    pcache_ = std::make_unique<PCache>(meta_->page_bytes,
                                       meta_->elems_per_page(),
                                       options_.pcache_bytes);
  }

  // Paper semantics: vectors are NOT destroyed in the destructor; call
  // Destroy() explicitly (avoids races between processes finishing at
  // different times).
  ~Vector() = default;
  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;

  /// Caps the DRAM this process may spend caching this vector (Vec.Max).
  void BoundMemory(std::uint64_t bytes) {
    options_.pcache_bytes = bytes;
    pcache_->set_capacity(bytes);
  }

  /// Partitions elements evenly across `nprocs` processes (PGAS-style).
  /// Also registers the partition as a placement hint so unplaced pages
  /// first-touch onto the node of the rank that owns them.
  void Pgas(int rank, int nprocs) {
    MM_CHECK(nprocs > 0 && rank >= 0 && rank < nprocs);
    pgas_rank_ = rank;
    pgas_nprocs_ = nprocs;
    service_->SetPgasHint(
        *meta_, VectorMeta::PgasHint{size(), nprocs,
                                     ctx_->world().ranks_per_node()});
  }

  std::uint64_t local_off() const {
    std::uint64_t n = size(), p = pgas_nprocs_, r = pgas_rank_;
    std::uint64_t base = n / p, rem = n % p;
    return r * base + std::min<std::uint64_t>(r, rem);
  }
  std::uint64_t local_size() const {
    std::uint64_t n = size(), p = pgas_nprocs_, r = pgas_rank_;
    std::uint64_t base = n / p, rem = n % p;
    return base + (r < rem ? 1 : 0);
  }

  std::uint64_t size() const { return meta_->num_elements(); }
  std::uint64_t size_bytes() const {
    return meta_->size_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t page_bytes() const { return meta_->page_bytes; }
  const std::string& key() const { return meta_->key; }
  CoherenceMode mode() const {
    return meta_->mode.load(std::memory_order_relaxed);
  }

  // ---- transactional memory API ----

  /// Iterable view of the active transaction's access sequence.
  class TxHandle;

  /// Declares a sequential scan over elements [off, off+count).
  TxHandle SeqTxBegin(std::uint64_t off, std::uint64_t count,
                      std::uint32_t flags) {
    BeginTx(std::make_unique<SeqTx>(flags, sizeof(T), meta_->elems_per_page(),
                                    off, count));
    return TxHandle(this);
  }

  /// Declares `count` pseudo-random accesses over [lo, hi), reproducible
  /// from `seed`.
  TxHandle RandTxBegin(std::uint64_t lo, std::uint64_t hi, std::uint64_t count,
                       std::uint32_t flags, std::uint64_t seed) {
    BeginTx(std::make_unique<RandTx>(flags, sizeof(T), meta_->elems_per_page(),
                                     lo, hi, count, seed));
    return TxHandle(this);
  }

  /// Declares a strided scan: off, off+stride, ... (count accesses).
  TxHandle StrideTxBegin(std::uint64_t off, std::uint64_t stride,
                         std::uint64_t count, std::uint32_t flags) {
    BeginTx(std::make_unique<StrideTx>(flags, sizeof(T),
                                       meta_->elems_per_page(), off, stride,
                                       count));
    return TxHandle(this);
  }

  /// Installs a user-defined transaction (custom subclass, paper §III-A).
  void TxBegin(std::unique_ptr<Transaction> tx) { BeginTx(std::move(tx)); }

  /// Ends the transaction: commits all unflushed modifications (the commit
  /// is asynchronous in simulated time; real execution waits so later
  /// readers observe the writes after the application's synchronization).
  void TxEnd() {
    MM_CHECK_MSG(tx_ != nullptr, "TxEnd without active transaction");
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    tx_.reset();
  }

  Transaction* active_tx() { return tx_.get(); }

  // ---- element access ----

  /// Faulting element access. Under a writing transaction the touched
  /// element is marked dirty. The reference stays valid until the next
  /// MegaMmap call on this vector.
  T& At(std::uint64_t i) {
    MM_CHECK_MSG(i < size(), "mm::Vector index out of range");
    std::uint64_t page = i / meta_->elems_per_page();
    std::uint64_t elem = i % meta_->elems_per_page();
    // Run the prefetcher BEFORE taking a frame reference: its eviction pass
    // may drop pages (including, for unaligned scans, this one — which then
    // simply refaults below).
    if (tx_ != nullptr && options_.prefetch_depth > 0 &&
        tx_->tail() % meta_->elems_per_page() == 0) {
      PrefetchStep();
    }
    // §III-E: the page that was last accessed is checked first — iterative
    // algorithms usually stay within one page for many accesses.
    PageFrame* frame =
        (page == last_page_ && last_frame_ != nullptr) ? last_frame_
                                                       : FetchFrame(page);
    last_page_ = page;
    last_frame_ = frame;
    const auto& costs = ctx_->costs();
    ctx_->Compute(costs.memory_access_s + costs.mm_access_overhead_s);
    if (tx_ != nullptr) {
      if (tx_->writes()) frame->dirty.Set(elem);
      tx_->AdvanceTail();
    }
    return *reinterpret_cast<T*>(frame->data.data() + elem * sizeof(T));
  }

  T& operator[](std::uint64_t i) { return At(i); }

  /// Read-only access: never dirties the element even inside a writing
  /// transaction.
  const T& Read(std::uint64_t i) {
    MM_CHECK_MSG(i < size(), "mm::Vector index out of range");
    std::uint64_t page = i / meta_->elems_per_page();
    std::uint64_t elem = i % meta_->elems_per_page();
    if (tx_ != nullptr && options_.prefetch_depth > 0 &&
        tx_->tail() % meta_->elems_per_page() == 0) {
      PrefetchStep();
    }
    PageFrame* frame =
        (page == last_page_ && last_frame_ != nullptr) ? last_frame_
                                                       : FetchFrame(page);
    last_page_ = page;
    last_frame_ = frame;
    const auto& costs = ctx_->costs();
    ctx_->Compute(costs.memory_access_s + costs.mm_access_overhead_s);
    if (tx_ != nullptr) tx_->AdvanceTail();
    return *reinterpret_cast<const T*>(frame->data.data() + elem * sizeof(T));
  }

  /// Explicit write (dirties the element with or without a transaction).
  void Set(std::uint64_t i, const T& value) {
    T& slot = At(i);
    slot = value;
    std::uint64_t page = i / meta_->elems_per_page();
    std::uint64_t elem = i % meta_->elems_per_page();
    pcache_->MarkDirty(page, elem, elem + 1);
  }

  /// Atomically extends the vector by one element; returns its index.
  std::uint64_t Append(const T& value) {
    std::uint64_t off =
        meta_->size_bytes.fetch_add(sizeof(T), std::memory_order_relaxed);
    std::uint64_t idx = off / sizeof(T);
    Set(idx, value);
    return idx;
  }

  // ---- persistence & lifecycle ----

  /// Synchronously commits this process's modifications to the scache and
  /// stages the vector's dirty pages to the backend.
  void Flush() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    sim::SimTime done = ctx_->clock().now();
    Status st =
        service_->FlushVector(*meta_, ctx_->node(), ctx_->clock().now(), &done);
    if (!st.ok()) throw std::runtime_error("Flush: " + st.ToString());
    ctx_->clock().AdvanceTo(done);
  }

  /// Commits this process's local modifications to the shared cache (no
  /// backend staging). Equivalent to the commit half of TxEnd; useful for
  /// non-transactional writes (Append/Set) before a synchronization point.
  void Commit() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
  }

  /// Commits local modifications and stages dirty pages without stalling
  /// the simulated clock: the staging engine drains in the background
  /// (paper §III-B "MegaMmap actively flushes modified data to storage
  /// during periods of computation"). Real execution still completes the
  /// staging before returning, so the data is durable.
  void FlushAsync() {
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    Status st = service_->FlushVector(*meta_, ctx_->node(),
                                      ctx_->clock().now(), nullptr);
    if (!st.ok()) throw std::runtime_error("FlushAsync: " + st.ToString());
  }

  /// Changes the coherence phase at a synchronization point. Leaving
  /// read-only invalidates replicas.
  void ChangePhase(CoherenceMode new_mode) {
    // Local modifications must be committed under the old phase's rules.
    FlushDirtyFrames(/*retain=*/true);
    WaitOutstanding();
    sim::SimTime done = ctx_->clock().now();
    Status st = service_->ChangePhase(*meta_, new_mode, ctx_->node(),
                                      ctx_->clock().now(), &done);
    if (!st.ok()) throw std::runtime_error("ChangePhase: " + st.ToString());
    ctx_->clock().AdvanceTo(done);
    // Replicas this rank was reading may be gone.
    last_page_ = kNoPage;
    last_frame_ = nullptr;
    for (std::uint64_t page : pcache_->ResidentPages()) {
      PageFrame* f = pcache_->Find(page);
      if (f != nullptr && !f->dirty.Any()) pcache_->Remove(page);
    }
  }

  /// Destroys the shared object (all processes' view of it). Explicit by
  /// design. The backend object is kept unless `remove_backend`.
  void Destroy(bool remove_backend = false) {
    WaitOutstanding();
    pcache_->Clear();
    last_page_ = kNoPage;
    last_frame_ = nullptr;
    Status st = service_->DestroyVector(*meta_, remove_backend);
    if (!st.ok()) throw std::runtime_error("Destroy: " + st.ToString());
  }

  // ---- stats ----
  std::uint64_t faults() const { return faults_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t prefetches() const { return prefetches_; }
  PCache& pcache() { return *pcache_; }
  VectorMeta& meta() { return *meta_; }

  // ---- TxHandle / iterator ----

  class TxIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    TxIterator(Vector* vec, std::size_t pos) : vec_(vec), pos_(pos) {}
    T& operator*() {
      return vec_->At(vec_->tx_->ElementAt(pos_));
    }
    TxIterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const TxIterator& other) const {
      return pos_ != other.pos_;
    }
    bool operator==(const TxIterator& other) const {
      return pos_ == other.pos_;
    }
    std::size_t pos() const { return pos_; }

   private:
    Vector* vec_;
    std::size_t pos_;
  };

  /// Iterating a TxHandle visits the transaction's access sequence:
  /// `for (T& x : tx) ...`.
  class TxHandle {
   public:
    explicit TxHandle(Vector* vec) : vec_(vec) {}
    TxIterator begin() { return TxIterator(vec_, 0); }
    TxIterator end() {
      return TxIterator(vec_, vec_->tx_->TotalAccesses());
    }
    Transaction& tx() { return *vec_->tx_; }

   private:
    Vector* vec_;
  };

 private:
  static constexpr std::uint64_t kNoPage = ~0ULL;

  void BeginTx(std::unique_ptr<Transaction> tx) {
    MM_CHECK_MSG(tx_ == nullptr,
                 "nested transactions on one vector are not supported");
    tx_ = std::move(tx);
    AcquireCoherence();
    if (options_.prefetch_depth > 0 && service_->options().enable_prefetch) {
      PrefetchStep();  // warm the initial window
    }
  }

  /// Acquire semantics at transaction begin: under globally-writable
  /// coherence modes, cached clean pages whose write-version moved on are
  /// dropped so this transaction observes other ranks' committed updates.
  /// Read-only and local modes never invalidate (nobody else wrote); dirty
  /// frames are this rank's own uncommitted data and are kept.
  void AcquireCoherence() {
    CoherenceMode mode = meta_->mode.load(std::memory_order_relaxed);
    if (!tx_->reads() || !RequiresOrderedWrites(mode)) return;
    // Batch the version queries: one coalesced metadata request per home
    // shard instead of a round trip per page.
    std::vector<std::uint64_t> pages;
    std::vector<storage::BlobId> ids;
    for (std::uint64_t page : pcache_->ResidentPages()) {
      PageFrame* frame = pcache_->Find(page);
      if (frame == nullptr || frame->dirty.Any()) continue;
      pages.push_back(page);
      ids.push_back(storage::BlobId{meta_->vector_id, page});
    }
    if (ids.empty()) return;
    sim::SimTime done = ctx_->clock().now();
    auto locs = service_->metadata().LookupBatch(ids, ctx_->node(),
                                                 ctx_->clock().now(), &done);
    ctx_->clock().AdvanceTo(done);
    for (std::size_t i = 0; i < pages.size(); ++i) {
      PageFrame* frame = pcache_->Find(pages[i]);
      if (frame == nullptr) continue;
      std::uint64_t current = locs[i].has_value() ? locs[i]->version : 0;
      if (current != frame->version) {
        pcache_->Remove(pages[i]);
        if (pages[i] == last_page_) {
          last_page_ = kNoPage;
          last_frame_ = nullptr;
        }
      }
    }
  }

  PageFrame* FetchFrame(std::uint64_t page) {
    if (PageFrame* f = pcache_->Find(page)) return f;
    // Read-your-writes: if this rank evicted dirty data for this page and
    // the async commit has not landed yet, wait for it (real time only —
    // the commit is still asynchronous in simulated time).
    WaitPage(page);
    std::vector<std::uint8_t> data;
    std::uint64_t version = 0;
    if (auto pending = pcache_->TakePending(page)) {
      // A prefetch already fetched (or is fetching) this page: the access
      // only stalls for whatever part of the fetch has not overlapped with
      // compute.
      TaskOutcome outcome = pending->future.get();
      if (!outcome.status.ok()) {
        throw std::runtime_error("prefetch failed: " +
                                 outcome.status.ToString());
      }
      sim::SimTime done = outcome.done;
      if (pending->remote) {
        auto rsp = service_->cluster().network().Transfer(
            done, pending->owner, ctx_->node(), outcome.data.size());
        done = rsp.delivered;
        service_->MaybeReplicate(*meta_, page, outcome.data, ctx_->node(),
                                 done);
      }
      ctx_->clock().AdvanceTo(done);
      data = std::move(outcome.data);
      version = outcome.version;
    } else {
      // Synchronous page fault.
      ++faults_;
      ctx_->Compute(ctx_->costs().page_fault_soft_s);
      sim::SimTime done = ctx_->clock().now();
      auto data_or = service_->ReadPage(*meta_, page, ctx_->node(),
                                        ctx_->clock().now(), &done, &version);
      if (!data_or.ok()) {
        throw std::runtime_error("page fault failed: " +
                                 data_or.status().ToString());
      }
      ctx_->clock().AdvanceTo(done);
      data = std::move(data_or).value();
    }
    MakeRoom();
    PageFrame* frame = pcache_->Insert(page, std::move(data));
    frame->version = version;
    return frame;
  }

  /// Evicts until one more page fits under the BoundMemory cap.
  void MakeRoom() {
    while (pcache_->used() + meta_->page_bytes > options_.pcache_bytes &&
           pcache_->num_frames() > 0) {
      auto victim = pcache_->PickVictim();
      if (!victim.has_value()) break;
      EvictPage(*victim);
    }
  }

  /// Evicts one page; dirty fragments become async writer MemoryTasks. The
  /// application pays only the copy (paper §III-B "Lifecycle of Modified
  /// Data").
  void EvictPage(std::uint64_t page) {
    auto frame = pcache_->Remove(page);
    if (!frame.has_value()) return;
    if (page == last_page_) {
      last_page_ = kNoPage;
      last_frame_ = nullptr;
    }
    ++evictions_;
    if (frame->dirty.Any()) {
      ShipDirtyRuns(page, *frame);
    }
  }

  /// Sends each dirty run of a frame as a partial-page write task.
  void ShipDirtyRuns(std::uint64_t page, PageFrame& frame) {
    const std::size_t es = sizeof(T);
    frame.dirty.ForEachRun([&](std::size_t lo, std::size_t hi) {
      std::uint64_t off = lo * es;
      std::uint64_t len = (hi - lo) * es;
      std::vector<std::uint8_t> bytes(len);
      std::memcpy(bytes.data(), frame.data.data() + off, len);
      ctx_->Compute(static_cast<double>(len) / ctx_->costs().memcpy_Bps);
      outstanding_.emplace_back(
          page, service_->WriteRegion(*meta_, page, off, std::move(bytes),
                                      ctx_->node(), ctx_->clock().now()));
    });
    frame.dirty.Reset();
  }

  /// Commits dirty frames; frames stay resident (clean) when `retain`.
  void FlushDirtyFrames(bool retain) {
    for (std::uint64_t page : pcache_->DirtyPages()) {
      PageFrame* frame = pcache_->Find(page);
      MM_CHECK(frame != nullptr);
      ShipDirtyRuns(page, *frame);
      if (!retain) {
        pcache_->Remove(page);
        if (page == last_page_) {
          last_page_ = kNoPage;
          last_frame_ = nullptr;
        }
      }
    }
  }

  /// Real-time wait for outstanding async commits (no virtual charge: the
  /// writes are asynchronous in simulated time).
  void WaitOutstanding() {
    for (auto& [page, f] : outstanding_) {
      TaskOutcome outcome = f.get();
      if (!outcome.status.ok()) {
        throw std::runtime_error("async commit failed: " +
                                 outcome.status.ToString());
      }
      // The frame may adopt the committed version only when no other
      // rank's write landed in between (its bytes would be missing here).
      if (PageFrame* frame = pcache_->Find(page)) {
        if (outcome.prev_version == frame->version) {
          frame->version = outcome.version;
        }
      }
    }
    outstanding_.clear();
  }

  /// Waits for (and retires) outstanding commits targeting one page.
  void WaitPage(std::uint64_t page) {
    auto it = outstanding_.begin();
    while (it != outstanding_.end()) {
      if (it->first == page) {
        TaskOutcome outcome = it->second.get();
        if (!outcome.status.ok()) {
          throw std::runtime_error("async commit failed: " +
                                   outcome.status.ToString());
        }
        if (PageFrame* frame = pcache_->Find(page)) {
          if (outcome.prev_version == frame->version) {
            frame->version = outcome.version;
          }
        }
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// One Algorithm 1 invocation.
  void PrefetchStep() {
    if (tx_ == nullptr || !service_->options().enable_prefetch) return;
    PrefetchVecState state;
    state.max_bytes = options_.pcache_bytes;
    state.cur_bytes = pcache_->committed();
    state.page_bytes = meta_->page_bytes;
    PrefetcherOps ops;
    ops.set_score = [&](std::uint64_t page, float score) {
      service_->SubmitScore(*meta_, page, score, ctx_->node(),
                            ctx_->clock().now());
    };
    ops.evict_page = [&](std::uint64_t page) {
      if (pcache_->Contains(page)) EvictPage(page);
    };
    ops.fetch_ahead = [&](std::uint64_t page) {
      if (page * meta_->elems_per_page() >= size()) return;
      auto ar = service_->ReadPageAsync(*meta_, page, ctx_->node(),
                                        ctx_->clock().now());
      ++prefetches_;
      pcache_->AddPending(page,
                          PendingFetch{std::move(ar.future), ar.owner,
                                       ar.owner != ctx_->node()});
    };
    ops.cached_or_pending = [&](std::uint64_t page) {
      return pcache_->Contains(page) || pcache_->HasPending(page);
    };
    ops.est_read_seconds = [&](std::uint64_t page, std::uint64_t bytes) {
      return service_->EstimateReadSeconds(*meta_, page, bytes);
    };
    Prefetcher::Step(state, *tx_, options_.min_score, ops);
  }

  Service* service_;
  comm::RankContext* ctx_;
  VectorOptions options_;
  VectorMeta* meta_ = nullptr;
  std::unique_ptr<PCache> pcache_;
  std::unique_ptr<Transaction> tx_;
  std::vector<std::pair<std::uint64_t, std::shared_future<TaskOutcome>>>
      outstanding_;
  std::uint64_t last_page_ = kNoPage;
  PageFrame* last_frame_ = nullptr;
  int pgas_rank_ = 0;
  int pgas_nprocs_ = 1;
  std::uint64_t faults_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t prefetches_ = 0;
};

}  // namespace mm::core
