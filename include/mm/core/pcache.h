// Private cache (pcache): the per-process DRAM page cache in front of the
// shared cache (paper §III-B "Distributed Heterogeneous Caching Structure").
// Copy-on-write: frames track element-granular dirty bits so evictions and
// TxEnd ship only the modified fragments. Capacity is the vector's
// BoundMemory limit (Vec.Max in Algorithm 1).
//
// Eviction is O(1): frames live on intrusive clean/dirty LRU lists kept up
// to date by Find/Insert/MarkDirty, so PickVictim is a list-front read, not
// a scan over all resident frames. Pinned frames (span access) are removed
// from both lists entirely and can never be chosen as victims.
//
// Concurrency contract (DESIGN.md §14): PCache has ONE owner — the rank
// thread whose Vector holds it. All mutating calls (Insert/Remove/Find/
// Mark*/Pin/Unpin/Clear) are owner-only and unlocked: Find/Touch/PickVictim
// are on the DESIGN.md §7 hot path and must stay lock- and check-free (lint
// rule MML004). What PR 7 adds is a *lock-free optimistic read side*:
// frames carry a seqlock (`PageFrame::seq`, even = stable, odd = writer in
// section) and are published through a fixed-size atomic page index, so any
// thread may PeekFrame() and copy bytes under an OptimisticGuard
// (core/optimistic_guard.h), validating the sequence word afterwards.
// Frames are recycled through a free list, never freed before the PCache
// itself dies, and (with optimistic readers armed) their published buffers
// are type-stable — refills copy into them rather than swapping them out —
// so a stale pointer read racing retirement dereferences live memory and
// then fails validation. Do not add a "just in case" mutex here.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mm/core/memory_task.h"
#include "mm/util/bitmap.h"
#include "mm/util/status.h"
#include "mm/util/thread_annotations.h"

namespace mm::core {

/// The per-frame sequence latch (seqlock word). Even = stable, odd = the
/// owner thread is mutating the frame. Optimistic readers load it before
/// and after copying bytes; writers bump it around every mutation, so a
/// read that overlapped a write never validates. Single writer by
/// construction (the owning rank thread), so Lock/Unlock are plain
/// fetch_adds, not CAS loops.
class MM_CAPABILITY("seqlatch") SeqLatch {
 public:
  /// Enters a write section: even -> odd. Owner thread only. Deliberately
  /// unannotated: retirement (PCache::Remove) leaves the latch odd forever,
  /// which is the protocol, not a leak — the annotated RAII entry point is
  /// FrameWriteGuard (core/optimistic_guard.h).
  void Lock() { word_.fetch_add(1, std::memory_order_acq_rel); }
  /// Leaves a write section: odd -> even, publishing the mutation.
  void Unlock() { word_.fetch_add(1, std::memory_order_release); }
  /// Acquire-load for optimistic readers (OptimisticGuard).
  std::uint64_t ReadAcquire() const {
    return word_.load(std::memory_order_acquire);
  }
  /// Relaxed re-load for validation (after an acquire fence).
  std::uint64_t ReadRelaxed() const {
    return word_.load(std::memory_order_relaxed);
  }
  static bool Stable(std::uint64_t word) { return (word & 1) == 0; }

 private:
  std::atomic<std::uint64_t> word_{0};
};

/// One cached page. The LRU bookkeeping fields are managed exclusively by
/// PCache; users touch `data`, `dirty` and — through the OptimisticGuard
/// API only (lint rule MML009) — `version`. Fields fall into three
/// disciplines:
///   - owner-only, never read concurrently: data (the vector object),
///     dirty, list, lru_it;
///   - atomics readable from any thread, seq-validated: page, version,
///     bytes (the published data pointer), pins;
///   - the seqlock itself: seq.
/// PageFrame is neither movable nor copyable (atomics); PCache owns frames
/// behind stable unique_ptrs and recycles retired ones through a free list.
struct PageFrame {
  std::vector<std::uint8_t> data;  // owner-only; swapped only inside a
                                   // write section (readers use `bytes`)
  Bitmap dirty;                    // one bit per element; owner-only
  /// Seqlock guarding optimistic reads of this frame (DESIGN.md §14).
  SeqLatch seq;
  /// Write-version of the scache page this frame was loaded from (or last
  /// committed to). Compared against metadata at TxBegin. Raw access is
  /// confined to core/pcache and core/optimistic_guard (MML009); everyone
  /// else goes through OptimisticGuard::Version/SetVersion.
  std::atomic<std::uint64_t> version{0};
  /// Published pointer to data.data(); what optimistic readers copy from.
  /// Dereferencing requires the seqlock discipline.
  std::atomic<std::uint8_t*> bytes MM_PT_GUARDED_BY(seq){nullptr};
  /// Page number this frame currently holds (~0 while retired/uninserted).
  std::atomic<std::uint64_t> page{~0ULL};
  /// Pin count (span access). Owner-mutated, any-thread readable.
  std::atomic<std::uint32_t> pins{0};

  // ---- intrusive LRU state (owner-only, managed by PCache) ----
  enum class Residency : std::uint8_t { kNone, kClean, kDirty };
  Residency list = Residency::kNone;
  std::list<PageFrame*>::iterator lru_it{};

  PageFrame() = default;
  PageFrame(const PageFrame&) = delete;
  PageFrame& operator=(const PageFrame&) = delete;
};

/// An in-flight asynchronous prefetch for a page.
struct PendingFetch {
  std::shared_future<TaskOutcome> future;
  std::size_t owner = 0;
  bool remote = false;
};

/// One PCache per (rank, vector). Mutations are owner-thread-only; the
/// lock-free read side (PeekFrame + OptimisticGuard) is safe from any
/// thread (see the header comment and DESIGN.md §14).
class PCache {
 public:
  /// `optimistic_readers` arms the lock-free read side's buffer-lifetime
  /// rules: once a frame's buffer has been published to readers it becomes
  /// type-stable — Insert copies new bytes into it (atomic stores) instead
  /// of swapping it out, so a stale reader can never dereference freed
  /// memory — and span pins hold the frame's seqlock odd so raw span
  /// writes never overlap a validated read. Off (the default), no
  /// cross-thread readers exist and Insert keeps the zero-copy swap.
  PCache(std::uint64_t page_bytes, std::uint64_t elems_per_page,
         std::uint64_t capacity_bytes, bool optimistic_readers = false)
      : page_bytes_(page_bytes),
        elems_per_page_(elems_per_page),
        capacity_bytes_(capacity_bytes),
        optimistic_readers_(optimistic_readers) {
    ResizeIndex();
  }

  std::uint64_t page_bytes() const { return page_bytes_; }
  std::uint64_t capacity() const { return capacity_bytes_; }
  /// Owner-only, and only safe while no optimistic reader is probing (it
  /// may rebuild the lock-free index). BoundMemory calls this at setup.
  void set_capacity(std::uint64_t bytes) {
    capacity_bytes_ = bytes;
    if (frames_.empty()) ResizeIndex();
  }
  std::uint64_t used() const { return frames_.size() * page_bytes_; }
  std::size_t num_frames() const { return frames_.size(); }

  /// Resident frame for a page, or nullptr. Moves the frame to the MRU end
  /// of its LRU list. Owner-only (LRU mutation).
  PageFrame* Find(std::uint64_t page) {
    auto it = frames_.find(page);
    if (it == frames_.end()) return nullptr;
    Touch(it->second.get());
    return it->second.get();
  }

  /// Lock-free resident-frame probe for optimistic readers: no LRU touch,
  /// no map access, safe from any thread. The returned frame may be
  /// retired or re-targeted at any moment — callers MUST read it through
  /// an OptimisticGuard and honor validation. May return nullptr for a
  /// resident page (index overflow); callers fall back to the queue path.
  const PageFrame* PeekFrame(std::uint64_t page) const {
    const std::size_t n = index_.size();
    const std::size_t mask = n - 1;
    std::size_t slot = MixPage(page) & mask;
    for (std::size_t probe = 0; probe < n; ++probe) {
      const IndexSlot& s = index_[slot];
      std::uint64_t p = s.page.load(std::memory_order_acquire);
      if (p == kSlotEmpty) return nullptr;
      if (p == page) return s.frame.load(std::memory_order_acquire);
      slot = (slot + 1) & mask;  // tombstone or another page: keep probing
    }
    return nullptr;
  }

  /// True when inserting one more page would exceed capacity. Counts
  /// in-flight prefetches (committed), so prefetching cannot overshoot the
  /// BoundMemory cap while fetches are outstanding.
  bool NeedsEviction() const {
    return committed() + page_bytes_ > capacity_bytes_ && !frames_.empty();
  }

  /// Inserts a fetched page (caller must have made room). The data must be
  /// exactly page_bytes long. The new frame enters the clean LRU list.
  /// Frames are recycled from the retired free list. The buffer handed
  /// back through *recycled (if non-null) keeps the zero-alloc loop of
  /// DESIGN.md §7 closed; with optimistic readers off it is the recycled
  /// frame's displaced buffer, with them on it is the caller's own `data`
  /// vector (the published buffer is type-stable: new bytes are copied
  /// into it with atomic stores, so a stale lock-free reader always
  /// dereferences live memory and then fails validation).
  PageFrame* Insert(std::uint64_t page, std::vector<std::uint8_t> data,
                    std::vector<std::uint8_t>* recycled = nullptr);

  /// Marks elements [elem_lo, elem_hi) of a page dirty (span write path:
  /// one call per page instead of one bit per element).
  void MarkDirty(std::uint64_t page, std::size_t elem_lo, std::size_t elem_hi);

  /// Scalar write fast path: dirties one element of an already-found frame
  /// without a second hash lookup. Owner-only state (dirty bitmap + LRU),
  /// so no seqlock section: the byte mutation itself is what writers must
  /// bracket (Vector::Set does, when concurrent readers are enabled).
  void MarkElemDirty(PageFrame* frame, std::size_t elem) {
    frame->dirty.Set(elem);
    if (frame->list == PageFrame::Residency::kClean) {
      MoveToList(frame, PageFrame::Residency::kDirty);
    }
  }

  /// Resets a page's dirty bits after its runs were shipped; the frame
  /// moves back to the clean LRU list (no-op on absent pages).
  void MarkClean(std::uint64_t page);

  /// Least-recently-used resident page (clean pages preferred, dirty LRU
  /// as fallback), or nullopt when nothing evictable remains. O(1): reads
  /// the front of the LRU lists. Pinned frames are never returned.
  std::optional<std::uint64_t> PickVictim() const {
    if (!clean_lru_.empty()) {
      return clean_lru_.front()->page.load(std::memory_order_relaxed);
    }
    if (!dirty_lru_.empty()) {
      return dirty_lru_.front()->page.load(std::memory_order_relaxed);
    }
    return std::nullopt;
  }

  /// Retires a frame (eviction/flush/invalidation). Refuses (via MM_CHECK)
  /// to remove a pinned frame: a live Span still points into it. The
  /// returned frame stays owned by the cache's free list with its data and
  /// dirty bits intact — valid for the owner to read (e.g. to ship dirty
  /// runs) until the next Insert reuses it. Its seqlock is left odd, so
  /// optimistic readers that still hold the pointer can never validate.
  /// Returns nullptr when the page is not resident.
  PageFrame* Remove(std::uint64_t page);

  // ---- pinning (span access) ----

  /// Pins a resident page: it leaves the LRU lists and cannot be evicted
  /// until every pin is released. Pins nest.
  void Pin(std::uint64_t page);
  void Unpin(std::uint64_t page);
  bool IsPinned(std::uint64_t page) const {
    auto it = frames_.find(page);
    return it != frames_.end() &&
           it->second->pins.load(std::memory_order_relaxed) > 0;
  }
  std::size_t num_pinned() const { return num_pinned_; }

  /// Pages currently resident (snapshot, unspecified order).
  std::vector<std::uint64_t> ResidentPages() const;

  /// Pages with at least one dirty element (dirty-LRU order, then pinned).
  std::vector<std::uint64_t> DirtyPages() const;

  bool Contains(std::uint64_t page) const {
    return frames_.count(page) > 0;
  }

  // ---- async prefetch bookkeeping ----
  bool HasPending(std::uint64_t page) const {
    return pending_.count(page) > 0;
  }
  void AddPending(std::uint64_t page, PendingFetch fetch) {
    pending_.emplace(page, std::move(fetch));
  }
  std::optional<PendingFetch> TakePending(std::uint64_t page);
  std::size_t num_pending() const { return pending_.size(); }
  /// Detaches every pending fetch without waiting (as in Clear); resident
  /// frames stay. Returns how many fetches were dropped. Used at phase
  /// changes: an in-flight prefetch was routed and versioned under the old
  /// phase's coherence rules, so adopting it later could resurrect an
  /// invalidated replica's data.
  std::size_t DropPendings() {
    std::size_t n = pending_.size();
    pending_.clear();
    return n;
  }
  /// Prefetches in flight also count against the capacity budget.
  std::uint64_t committed() const {
    return used() + pending_.size() * page_bytes_;
  }

  /// Retires all frames and detaches pending fetches without waiting on
  /// them: the worker still fulfills its promise, but nobody adopts the
  /// outcome (used on Destroy, where the fetched bytes are moot). Retired
  /// frames stay allocated on the free list, so optimistic readers racing
  /// a Destroy fail validation instead of dereferencing freed memory.
  void Clear();

 private:
  // The lock-free page index: a fixed open-addressed table of atomic
  // (page, frame) slots, written by the owner on Insert/Remove and probed
  // by PeekFrame from any thread. Sized at construction (and on
  // set_capacity while still empty) to 4x the frame budget; overflowing
  // inserts simply go unindexed — optimistic readers then miss and fall
  // back, which is slow but never wrong.
  static constexpr std::uint64_t kSlotEmpty = ~0ULL;
  static constexpr std::uint64_t kSlotTombstone = ~0ULL - 1;
  struct IndexSlot {
    std::atomic<std::uint64_t> page{kSlotEmpty};
    std::atomic<PageFrame*> frame{nullptr};
  };

  static std::uint64_t MixPage(std::uint64_t x) {
    // splitmix64 finalizer: page numbers are sequential, spread them.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void ResizeIndex();
  /// Publishes / unpublishes a frame in the lock-free index (owner-only).
  void IndexPut(std::uint64_t page, PageFrame* frame);
  void IndexErase(std::uint64_t page);

  /// Moves a frame to the MRU end of its current list (no-op when pinned).
  void Touch(PageFrame* frame) {
    if (frame->list == PageFrame::Residency::kClean) {
      clean_lru_.splice(clean_lru_.end(), clean_lru_, frame->lru_it);
    } else if (frame->list == PageFrame::Residency::kDirty) {
      dirty_lru_.splice(dirty_lru_.end(), dirty_lru_, frame->lru_it);
    }
  }

  std::list<PageFrame*>& ListOf(PageFrame::Residency kind) {
    return kind == PageFrame::Residency::kClean ? clean_lru_ : dirty_lru_;
  }

  /// Detaches a frame from whichever list holds it.
  void Unlist(PageFrame* frame) {
    if (frame->list != PageFrame::Residency::kNone) {
      ListOf(frame->list).erase(frame->lru_it);
      frame->list = PageFrame::Residency::kNone;
    }
  }

  /// Appends a frame at the MRU end of `kind`, detaching it first.
  void MoveToList(PageFrame* frame, PageFrame::Residency kind) {
    Unlist(frame);
    auto& lst = ListOf(kind);
    frame->lru_it = lst.insert(lst.end(), frame);
    frame->list = kind;
  }

  std::uint64_t page_bytes_;
  std::uint64_t elems_per_page_;
  std::uint64_t capacity_bytes_;
  /// Lock-free read side armed: published buffers are type-stable and
  /// span pins hold the seqlock odd (see the constructor comment).
  bool optimistic_readers_ = false;
  std::size_t num_pinned_ = 0;
  /// Frame storage. unique_ptr (not by-value) for two load-bearing
  /// reasons: PageFrame holds atomics (immovable), and optimistic readers
  /// need frame addresses stable across rehash and retirement.
  std::unordered_map<std::uint64_t, std::unique_ptr<PageFrame>> frames_;
  /// Retired frames awaiting reuse; their buffers and bytes stay alive so
  /// racing optimistic readers dereference live memory and fail validation.
  std::vector<std::unique_ptr<PageFrame>> free_frames_;
  std::vector<IndexSlot> index_;
  std::list<PageFrame*> clean_lru_;  // front = LRU, back = MRU
  std::list<PageFrame*> dirty_lru_;
  std::unordered_map<std::uint64_t, PendingFetch> pending_;
};

}  // namespace mm::core
