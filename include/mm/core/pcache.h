// Private cache (pcache): the per-process DRAM page cache in front of the
// shared cache (paper §III-B "Distributed Heterogeneous Caching Structure").
// Copy-on-write: frames track element-granular dirty bits so evictions and
// TxEnd ship only the modified fragments. Capacity is the vector's
// BoundMemory limit (Vec.Max in Algorithm 1).
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mm/core/memory_task.h"
#include "mm/util/bitmap.h"
#include "mm/util/status.h"

namespace mm::core {

/// One cached page.
struct PageFrame {
  std::vector<std::uint8_t> data;
  Bitmap dirty;  // one bit per element
  std::uint64_t last_access = 0;
  /// Write-version of the scache page this frame was loaded from (or last
  /// committed to). Compared against metadata at TxBegin.
  std::uint64_t version = 0;
};

/// An in-flight asynchronous prefetch for a page.
struct PendingFetch {
  std::shared_future<TaskOutcome> future;
  std::size_t owner = 0;
  bool remote = false;
};

/// Not thread-safe: one PCache per (rank, vector), used only by its rank.
class PCache {
 public:
  PCache(std::uint64_t page_bytes, std::uint64_t elems_per_page,
         std::uint64_t capacity_bytes)
      : page_bytes_(page_bytes),
        elems_per_page_(elems_per_page),
        capacity_bytes_(capacity_bytes) {}

  std::uint64_t page_bytes() const { return page_bytes_; }
  std::uint64_t capacity() const { return capacity_bytes_; }
  void set_capacity(std::uint64_t bytes) { capacity_bytes_ = bytes; }
  std::uint64_t used() const { return frames_.size() * page_bytes_; }
  std::size_t num_frames() const { return frames_.size(); }

  /// Resident frame for a page, or nullptr. Bumps the LRU stamp.
  PageFrame* Find(std::uint64_t page);

  /// True when inserting one more page would exceed capacity.
  bool NeedsEviction() const {
    return used() + page_bytes_ > capacity_bytes_ && !frames_.empty();
  }

  /// Inserts a fetched page (caller must have made room). The data must be
  /// exactly page_bytes long.
  PageFrame* Insert(std::uint64_t page, std::vector<std::uint8_t> data);

  /// Marks elements [elem_lo, elem_hi) of a page dirty.
  void MarkDirty(std::uint64_t page, std::size_t elem_lo, std::size_t elem_hi);

  /// Least-recently-used resident page (clean pages preferred), or nullopt
  /// when empty.
  std::optional<std::uint64_t> PickVictim() const;

  /// Detaches a frame from the cache (for eviction/flush).
  std::optional<PageFrame> Remove(std::uint64_t page);

  /// Pages currently resident (snapshot, unspecified order).
  std::vector<std::uint64_t> ResidentPages() const;

  /// Pages with at least one dirty element.
  std::vector<std::uint64_t> DirtyPages() const;

  bool Contains(std::uint64_t page) const {
    return frames_.count(page) > 0;
  }

  // ---- async prefetch bookkeeping ----
  bool HasPending(std::uint64_t page) const {
    return pending_.count(page) > 0;
  }
  void AddPending(std::uint64_t page, PendingFetch fetch) {
    pending_.emplace(page, std::move(fetch));
  }
  std::optional<PendingFetch> TakePending(std::uint64_t page);
  std::size_t num_pending() const { return pending_.size(); }
  /// Prefetches in flight also count against the capacity budget.
  std::uint64_t committed() const {
    return used() + pending_.size() * page_bytes_;
  }

  void Clear();

 private:
  std::uint64_t page_bytes_;
  std::uint64_t elems_per_page_;
  std::uint64_t capacity_bytes_;
  std::uint64_t access_seq_ = 0;
  std::unordered_map<std::uint64_t, PageFrame> frames_;
  std::unordered_map<std::uint64_t, PendingFetch> pending_;
};

}  // namespace mm::core
