// Private cache (pcache): the per-process DRAM page cache in front of the
// shared cache (paper §III-B "Distributed Heterogeneous Caching Structure").
// Copy-on-write: frames track element-granular dirty bits so evictions and
// TxEnd ship only the modified fragments. Capacity is the vector's
// BoundMemory limit (Vec.Max in Algorithm 1).
//
// Eviction is O(1): frames live on intrusive clean/dirty LRU lists kept up
// to date by Find/Insert/MarkDirty, so PickVictim is a list-front read, not
// a scan over all resident frames. Pinned frames (span access) are removed
// from both lists entirely and can never be chosen as victims.
//
// Concurrency contract: PCache is deliberately single-threaded — each
// instance is owned by exactly one rank's Vector and never shared, so it
// carries no mutex and no thread-safety annotations. Cross-rank page state
// lives behind the Service/BufferManager locks instead. Do not add a
// "just in case" mutex here: Find/Touch/PickVictim are on the DESIGN.md §7
// hot path and must stay lock- and check-free (lint rule MML004).
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mm/core/memory_task.h"
#include "mm/util/bitmap.h"
#include "mm/util/status.h"

namespace mm::core {

/// One cached page. The LRU bookkeeping fields are managed exclusively by
/// PCache; users only touch `data`, `dirty` and `version`.
struct PageFrame {
  std::vector<std::uint8_t> data;
  Bitmap dirty;  // one bit per element
  /// Write-version of the scache page this frame was loaded from (or last
  /// committed to). Compared against metadata at TxBegin.
  std::uint64_t version = 0;

  // ---- intrusive LRU state (owned by PCache) ----
  enum class Residency : std::uint8_t { kNone, kClean, kDirty };
  std::uint64_t page = ~0ULL;
  std::uint32_t pins = 0;
  Residency list = Residency::kNone;
  std::list<PageFrame*>::iterator lru_it{};
};

/// An in-flight asynchronous prefetch for a page.
struct PendingFetch {
  std::shared_future<TaskOutcome> future;
  std::size_t owner = 0;
  bool remote = false;
};

/// Not thread-safe: one PCache per (rank, vector), used only by its rank.
class PCache {
 public:
  PCache(std::uint64_t page_bytes, std::uint64_t elems_per_page,
         std::uint64_t capacity_bytes)
      : page_bytes_(page_bytes),
        elems_per_page_(elems_per_page),
        capacity_bytes_(capacity_bytes) {}

  std::uint64_t page_bytes() const { return page_bytes_; }
  std::uint64_t capacity() const { return capacity_bytes_; }
  void set_capacity(std::uint64_t bytes) { capacity_bytes_ = bytes; }
  std::uint64_t used() const { return frames_.size() * page_bytes_; }
  std::size_t num_frames() const { return frames_.size(); }

  /// Resident frame for a page, or nullptr. Moves the frame to the MRU end
  /// of its LRU list.
  PageFrame* Find(std::uint64_t page) {
    auto it = frames_.find(page);
    if (it == frames_.end()) return nullptr;
    Touch(&it->second);
    return &it->second;
  }

  /// True when inserting one more page would exceed capacity. Counts
  /// in-flight prefetches (committed), so prefetching cannot overshoot the
  /// BoundMemory cap while fetches are outstanding.
  bool NeedsEviction() const {
    return committed() + page_bytes_ > capacity_bytes_ && !frames_.empty();
  }

  /// Inserts a fetched page (caller must have made room). The data must be
  /// exactly page_bytes long. The new frame enters the clean LRU list.
  PageFrame* Insert(std::uint64_t page, std::vector<std::uint8_t> data);

  /// Marks elements [elem_lo, elem_hi) of a page dirty (span write path:
  /// one call per page instead of one bit per element).
  void MarkDirty(std::uint64_t page, std::size_t elem_lo, std::size_t elem_hi);

  /// Scalar write fast path: dirties one element of an already-found frame
  /// without a second hash lookup.
  void MarkElemDirty(PageFrame* frame, std::size_t elem) {
    frame->dirty.Set(elem);
    if (frame->list == PageFrame::Residency::kClean) {
      MoveToList(frame, PageFrame::Residency::kDirty);
    }
  }

  /// Resets a page's dirty bits after its runs were shipped; the frame
  /// moves back to the clean LRU list (no-op on absent pages).
  void MarkClean(std::uint64_t page);

  /// Least-recently-used resident page (clean pages preferred, dirty LRU
  /// as fallback), or nullopt when nothing evictable remains. O(1): reads
  /// the front of the LRU lists. Pinned frames are never returned.
  std::optional<std::uint64_t> PickVictim() const {
    if (!clean_lru_.empty()) return clean_lru_.front()->page;
    if (!dirty_lru_.empty()) return dirty_lru_.front()->page;
    return std::nullopt;
  }

  /// Detaches a frame from the cache (for eviction/flush). Refuses (via
  /// MM_CHECK) to remove a pinned frame: a live Span still points into it.
  std::optional<PageFrame> Remove(std::uint64_t page);

  // ---- pinning (span access) ----

  /// Pins a resident page: it leaves the LRU lists and cannot be evicted
  /// until every pin is released. Pins nest.
  void Pin(std::uint64_t page);
  void Unpin(std::uint64_t page);
  bool IsPinned(std::uint64_t page) const {
    auto it = frames_.find(page);
    return it != frames_.end() && it->second.pins > 0;
  }
  std::size_t num_pinned() const { return num_pinned_; }

  /// Pages currently resident (snapshot, unspecified order).
  std::vector<std::uint64_t> ResidentPages() const;

  /// Pages with at least one dirty element (dirty-LRU order, then pinned).
  std::vector<std::uint64_t> DirtyPages() const;

  bool Contains(std::uint64_t page) const {
    return frames_.count(page) > 0;
  }

  // ---- async prefetch bookkeeping ----
  bool HasPending(std::uint64_t page) const {
    return pending_.count(page) > 0;
  }
  void AddPending(std::uint64_t page, PendingFetch fetch) {
    pending_.emplace(page, std::move(fetch));
  }
  std::optional<PendingFetch> TakePending(std::uint64_t page);
  std::size_t num_pending() const { return pending_.size(); }
  /// Detaches every pending fetch without waiting (as in Clear); resident
  /// frames stay. Returns how many fetches were dropped. Used at phase
  /// changes: an in-flight prefetch was routed and versioned under the old
  /// phase's coherence rules, so adopting it later could resurrect an
  /// invalidated replica's data.
  std::size_t DropPendings() {
    std::size_t n = pending_.size();
    pending_.clear();
    return n;
  }
  /// Prefetches in flight also count against the capacity budget.
  std::uint64_t committed() const {
    return used() + pending_.size() * page_bytes_;
  }

  /// Drops all frames and detaches pending fetches without waiting on them:
  /// the worker still fulfills its promise, but nobody adopts the outcome
  /// (used on Destroy, where the fetched bytes are moot).
  void Clear();

 private:
  /// Moves a frame to the MRU end of its current list (no-op when pinned).
  void Touch(PageFrame* frame) {
    if (frame->list == PageFrame::Residency::kClean) {
      clean_lru_.splice(clean_lru_.end(), clean_lru_, frame->lru_it);
    } else if (frame->list == PageFrame::Residency::kDirty) {
      dirty_lru_.splice(dirty_lru_.end(), dirty_lru_, frame->lru_it);
    }
  }

  std::list<PageFrame*>& ListOf(PageFrame::Residency kind) {
    return kind == PageFrame::Residency::kClean ? clean_lru_ : dirty_lru_;
  }

  /// Detaches a frame from whichever list holds it.
  void Unlist(PageFrame* frame) {
    if (frame->list != PageFrame::Residency::kNone) {
      ListOf(frame->list).erase(frame->lru_it);
      frame->list = PageFrame::Residency::kNone;
    }
  }

  /// Appends a frame at the MRU end of `kind`, detaching it first.
  void MoveToList(PageFrame* frame, PageFrame::Residency kind) {
    Unlist(frame);
    auto& lst = ListOf(kind);
    frame->lru_it = lst.insert(lst.end(), frame);
    frame->list = kind;
  }

  std::uint64_t page_bytes_;
  std::uint64_t elems_per_page_;
  std::uint64_t capacity_bytes_;
  std::size_t num_pinned_ = 0;
  std::unordered_map<std::uint64_t, PageFrame> frames_;
  std::list<PageFrame*> clean_lru_;  // front = LRU, back = MRU
  std::list<PageFrame*> dirty_lru_;
  std::unordered_map<std::uint64_t, PendingFetch> pending_;
};

}  // namespace mm::core
