// Collective checkpoint/restore (DESIGN.md §12): every rank of the job
// calls these together. The barrier's serial section elects the
// last-arriving rank as leader; it quiesces, flushes, and publishes while
// every other rank is still parked, then all ranks observe the leader's
// outcome through the coordinator's result channel with their clocks
// advanced past the operation.
#pragma once

#include <functional>
#include <string>

#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::ckpt {

/// Coordinated incremental checkpoint across all ranks of `comm` (must be
/// the world communicator). Returns the leader's stats on every rank.
inline StatusOr<CheckpointStats> CollectiveCheckpoint(
    comm::Communicator& comm, core::Service& service, const std::string& tag) {
  std::function<sim::SimTime(sim::SimTime)> serial =
      [&](sim::SimTime sync) -> sim::SimTime {
    sim::SimTime leader_done = sync;
    auto stats = service.Checkpoint(tag, comm.ctx().node(), sync,
                                    &leader_done);
    service.checkpointer().PublishResult(
        stats.ok() ? Status::Ok() : stats.status(),
        stats.ok() ? *stats : CheckpointStats{});
    return leader_done;
  };
  MM_RETURN_IF_ERROR(comm.BarrierSerial(serial));
  MM_RETURN_IF_ERROR(service.checkpointer().last_status());
  return service.checkpointer().last_stats();
}

/// Coordinated restore across all ranks of `comm`: the leader rebuilds the
/// vectors and directory from the manifest of `tag`; everyone returns the
/// leader's status.
inline Status CollectiveRestore(comm::Communicator& comm,
                                core::Service& service,
                                const std::string& tag) {
  std::function<sim::SimTime(sim::SimTime)> serial =
      [&](sim::SimTime sync) -> sim::SimTime {
    sim::SimTime leader_done = sync;
    Status st = service.Restore(tag, comm.ctx().node(), sync, &leader_done);
    service.checkpointer().PublishResult(st, CheckpointStats{});
    return leader_done;
  };
  MM_RETURN_IF_ERROR(comm.BarrierSerial(serial));
  return service.checkpointer().last_status();
}

}  // namespace mm::ckpt
