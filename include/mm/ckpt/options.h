// Checkpoint/restore configuration (DESIGN.md §12). Kept dependency-free so
// core/options.h can embed it without pulling the ckpt subsystem in.
#pragma once

#include <string>

namespace mm::ckpt {

/// Options for the mm::ckpt subsystem. The subsystem is enabled by pointing
/// `dir` at a directory: per-node redo journals (`journal.<node>.mmj`) and
/// epoch manifests (`<tag>.mmck`) live there.
struct CkptOptions {
  /// Checkpoint directory; empty disables journaling and Checkpoint/Restore.
  std::string dir;
  /// When true (default), every stager flush appends a redo record to the
  /// node's journal before the in-place backend write, making flushes
  /// page-atomic under crashes.
  bool journal_writeback = true;

  bool enabled() const { return !dir.empty(); }
};

}  // namespace mm::ckpt
