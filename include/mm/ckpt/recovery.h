// Collective node-death recovery (DESIGN.md §13): after a kPeerDead
// verdict, every survivor calls CollectiveRecover together. The recovery
// barrier's serial section — running alone, with all other survivors
// parked — fences the dead ranks out of the message layer, fences dead
// nodes out of page placement, and then either re-homes the dead nodes'
// DSM pages (RecoveryPolicy::kRehome: journal replay for dirty pages,
// lazy backend re-stage for clean ones) or rolls every vector back to the
// last collective checkpoint (kRollback). The revocation is cleared before
// release, so survivors resume on a consistent world; they then continue
// on comm.Shrink().
//
// Protocol (ULFM-flavored, over the deterministic membership state):
//   1. detect   — a collective/receive returns kPeerDead
//   2. revoke   — comm.Revoke() pulls every survivor out of its pending ops
//   3. converge — all survivors call CollectiveRecover (barrier)
//   4. fence    — serial section purges dead ranks' messages, fences nodes
//   5. recover  — re-home or rollback, per ServiceOptions::recovery_policy
//   6. resume   — ClearRevoke, release, survivors Shrink() and continue
#pragma once

#include <functional>
#include <string>

#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::ckpt {

/// Coordinated recovery across all surviving ranks of `comm` (must be the
/// world communicator). `rollback_tag` names the checkpoint to restore
/// under RecoveryPolicy::kRollback (required then, ignored for kRehome).
/// Returns the service's accumulated recovery stats on every survivor.
/// Idempotent: a node already fenced is skipped, so back-to-back failures
/// recover incrementally.
inline StatusOr<core::Service::RecoveryStats> CollectiveRecover(
    comm::Communicator& comm, core::Service& service,
    const std::string& rollback_tag = "") {
  core::RecoveryPolicy policy = service.options().recovery_policy;
  if (policy == core::RecoveryPolicy::kRollback && rollback_tag.empty()) {
    return FailedPrecondition(
        "recovery_policy rollback requires a checkpoint tag");
  }
  comm::World& world = comm.ctx().world();
  std::function<sim::SimTime(sim::SimTime)> serial =
      [&](sim::SimTime sync) -> sim::SimTime {
    sim::SimTime done = sync;
    // Every survivor is parked: fencing cannot race a live sender, and the
    // dead are sticky-dead, so the purge is complete.
    world.FenceDeadRanks();
    Status st = Status::Ok();
    bool any_node_died = false;
    for (std::size_t node = 0; node < service.num_nodes(); ++node) {
      // A node with a surviving rank keeps serving its pages; only a fully
      // dead node loses its scache.
      if (!world.NodeIsDead(node) || service.NodeFenced(node)) continue;
      any_node_died = true;
      if (policy == core::RecoveryPolicy::kRollback) {
        service.FenceNode(node);
      } else {
        // The stats land in service.last_recovery(), returned below; the
        // StatusOr here only duplicates them.
        (void)service.RecoverDeadNode(node, comm.ctx().node(), sync);
      }
    }
    if (st.ok() && any_node_died &&
        policy == core::RecoveryPolicy::kRollback) {
      st = service.Restore(rollback_tag, comm.ctx().node(), sync, &done);
    }
    service.checkpointer().PublishResult(st, CheckpointStats{});
    world.ClearRevoke();
    return done;
  };
  MM_RETURN_IF_ERROR(comm.BarrierSerial(serial));
  MM_RETURN_IF_ERROR(service.checkpointer().last_status());
  return service.last_recovery();
}

}  // namespace mm::ckpt
