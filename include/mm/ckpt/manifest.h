// Epoch checkpoint manifests (DESIGN.md §12): the atomically-published
// record of one coordinated checkpoint — per-vector page tables carrying
// version, full-page CRC, backing URI, and tier/node residency hints.
// Publication is write-to-temp + rename (enforced tree-wide by MML007); a
// reader either sees the previous complete manifest or the new one, never a
// torn mix. A trailing CRC line guards the content itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/util/status.h"

namespace mm::ckpt {

/// One page's entry in a vector's checkpoint page table.
struct ManifestPage {
  std::uint64_t page_idx = 0;
  /// Directory version of the page at the checkpoint epoch.
  std::uint64_t version = 0;
  /// CRC-32 of the full resident page (restore verifies stage-ins with it).
  std::uint32_t crc = 0;
  /// Residency hints at checkpoint time (sim::TierKind as int + home node);
  /// restore uses them for placement affinity, not as truth about bytes.
  int tier = 4;
  std::uint64_t node = 0;
};

/// One vector's registration info + page table.
struct ManifestVector {
  /// Backing object key ("scheme://path#fragment") — the backing URI of
  /// every page in this table.
  std::string key;
  std::uint64_t elem_size = 0;
  std::uint64_t size_bytes = 0;
  std::uint64_t page_bytes = 0;
  std::vector<ManifestPage> pages;
};

struct Manifest {
  std::uint64_t epoch = 0;
  std::string tag;
  std::vector<ManifestVector> vectors;
};

/// Text serialization (line-based, CRC-terminated).
std::string SerializeManifest(const Manifest& m);
StatusOr<Manifest> ParseManifest(const std::string& text);

/// Canonical manifest path for a tag: `<dir>/<tag>.mmck`.
std::string ManifestPath(const std::string& dir, const std::string& tag);

/// Writes the manifest to `path + ".tmp"` (fsynced on close). Publication
/// is a separate step so a crash between the two leaves the previous
/// manifest in place — the kMidManifestRename crash point.
Status WriteManifestTemp(const Manifest& m, const std::string& path);

/// Atomically renames `path + ".tmp"` into `path`.
Status PublishManifest(const std::string& path);

/// WriteManifestTemp + PublishManifest.
Status WriteManifest(const Manifest& m, const std::string& path);

/// Reads and validates (magic + trailing CRC) a published manifest.
StatusOr<Manifest> ReadManifest(const std::string& path);

}  // namespace mm::ckpt
