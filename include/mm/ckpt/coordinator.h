// Per-service checkpoint state: the per-node redo journals, the epoch
// counter, startup recovery, and the leader-to-followers result channel of
// a collective checkpoint (DESIGN.md §12).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mm/ckpt/journal.h"
#include "mm/ckpt/options.h"
#include "mm/storage/blob.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::ckpt {

/// Outcome of one Service::Checkpoint, reported to benches/telemetry.
struct CheckpointStats {
  std::uint64_t epoch = 0;
  std::string tag;
  std::string manifest_path;
  /// Pages with a directory entry at the epoch (manifest page table size).
  std::uint64_t pages_total = 0;
  /// Pages flushed by this checkpoint (dirty since the previous epoch).
  std::uint64_t pages_written = 0;
  std::uint64_t bytes_written = 0;
  /// pages_written / max(1, pages_total): the incremental savings.
  double incremental_ratio = 0.0;
  /// Virtual seconds from quiesce start to manifest publication.
  double duration_s = 0.0;
};

/// Owns the ckpt-subsystem state of one Service. Thread-safe.
class Coordinator {
 public:
  /// Highest durable flushed state known for a page beyond the manifests:
  /// Restore overlays manifest entries that a redo record supersedes.
  struct DurableState {
    std::uint64_t version = 0;
    std::uint32_t page_crc = 0;
  };

  Coordinator(CkptOptions options, std::size_t num_nodes);

  bool enabled() const { return options_.enabled(); }
  /// Whether flushes must append redo records before writing in place.
  bool journaling() const { return enabled() && options_.journal_writeback; }
  const CkptOptions& options() const { return options_; }

  /// Node-local redo journal; nullptr when the subsystem is disabled.
  Journal* journal(std::size_t node) {
    return node < journals_.size() ? journals_[node].get() : nullptr;
  }

  std::string ManifestPathFor(const std::string& tag) const;

  /// Epoch for the next checkpoint (monotonic; seeded past every manifest
  /// already in the checkpoint directory).
  std::uint64_t NextEpoch() {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Startup recovery: re-applies every intact journal record to its
  /// backing object (idempotent redo — heals torn or skipped in-place
  /// writes), remembers the applied (version, CRC) per page so a later
  /// Restore can overlay manifests, and trims torn tails. Counts land in
  /// `applied` / `torn` when non-null.
  Status RecoverOnStartup(std::uint64_t* applied = nullptr,
                          std::uint64_t* torn = nullptr);

  /// Durable flushed state ahead of any manifest, from startup-replayed
  /// records and the live journals. NotFound when no record supersedes.
  StatusOr<DurableState> LatestDurable(const storage::BlobId& id) const;

  /// Drops every journal record and the replayed-state overlay (a published
  /// manifest or completed restore now covers them).
  Status TruncateJournals();

  /// Leader rank publishes its Checkpoint outcome; follower ranks of the
  /// collective read it after the release barrier.
  void PublishResult(const Status& status, const CheckpointStats& stats);
  Status last_status() const;
  CheckpointStats last_stats() const;

 private:
  CkptOptions options_;
  std::vector<std::unique_ptr<Journal>> journals_;
  std::atomic<std::uint64_t> epoch_{0};
  // Lock order (MML101, contract edge): coordinator state is the outer
  // lock; per-rank journals lock themselves. Replay deliberately drains
  // records under Journal::mu_ and applies them with NO lock held, so the
  // edge is declared intent, not (yet) an observed nesting.
  mutable Mutex mu_ MM_ACQUIRED_BEFORE(Journal::mu_);
  std::unordered_map<storage::BlobId, DurableState, storage::BlobIdHash>
      replayed_ MM_GUARDED_BY(mu_);
  Status last_status_ MM_GUARDED_BY(mu_) = Status::Ok();
  CheckpointStats last_stats_ MM_GUARDED_BY(mu_);
};

}  // namespace mm::ckpt
