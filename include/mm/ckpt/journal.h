// Per-node redo journal for crash-consistent stager writeback (DESIGN.md
// §12, after Marathe et al., "Persistent Memory Transactions"). Every flush
// appends a self-describing redo record — page id, directory version,
// full-page CRC, backing key, payload — and flushes it to disk *before* the
// in-place backend write. Recovery replays intact records (idempotent: the
// same bytes land at the same offset) and discards a torn tail, so a crash
// at any point mid-flush never leaves a torn page behind.
//
// On-disk record layout (host-endian, single writer per node):
//
//   [magic 'MMJ1' u32] [key_len u32] [vector_id u64] [page_idx u64]
//   [version u64] [offset u64] [payload_len u64] [page_crc u32]
//   [payload_crc u32] <key bytes> [header_crc u32] <payload bytes>
//
// `page_crc` is the directory's CRC of the *full* resident page at
// `version` (what a restored directory entry must carry); `payload_crc`
// covers the possibly-trimmed payload and detects torn appends.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mm/storage/blob.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::ckpt {

/// One redo record: enough to re-apply a flush to its backing object and to
/// rebuild the page's directory entry.
struct JournalRecord {
  storage::BlobId id;
  std::uint64_t version = 0;
  /// Byte offset of the payload within the backing object.
  std::uint64_t offset = 0;
  /// Directory CRC of the full page at `version` (restore overlay).
  std::uint32_t page_crc = 0;
  /// CRC of `payload` (stamped by Append; detects torn appends).
  std::uint32_t payload_crc = 0;
  /// Backing object key (scheme://...), resolved via StagerRegistry.
  std::string key;
  std::vector<std::uint8_t> payload;
};

/// Append-only redo journal bound to one file. Thread-safe; a fresh
/// instance over an existing file indexes its intact records (a torn tail
/// is remembered and trimmed before the next append).
class Journal {
 public:
  /// Approximate on-disk overhead of one record past its payload; used to
  /// charge simulated PFS time for the append.
  static constexpr std::uint64_t kRecordOverheadBytes = 64;

  explicit Journal(std::string path);

  /// Appends one redo record and flushes it to disk before returning.
  Status Append(const JournalRecord& rec);

  /// Crash simulation: appends a deliberately torn record (header plus half
  /// the payload), exactly what a process killed mid-append leaves behind.
  /// The record is not indexed; Replay must discard it.
  Status AppendTorn(const JournalRecord& rec);

  /// Latest intact record for a page, payload read back from the file.
  StatusOr<JournalRecord> Latest(const storage::BlobId& id) const;

  /// Scans the file, invoking `apply` on every intact record in append
  /// order; stops at the first torn/corrupt record. `applied`/`torn` (when
  /// non-null) receive the respective record counts.
  Status Replay(const std::function<Status(const JournalRecord&)>& apply,
                std::uint64_t* applied = nullptr,
                std::uint64_t* torn = nullptr) const;

  /// Drops every record (after a checkpoint folded them into a manifest).
  Status Truncate();

  std::uint64_t record_count() const;
  /// Bytes of intact records on disk (excludes a torn tail).
  std::uint64_t size_bytes() const;
  const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    std::uint64_t version = 0;
    std::uint64_t offset = 0;
    std::uint32_t page_crc = 0;
    std::uint32_t payload_crc = 0;
    std::uint64_t payload_pos = 0;  // file offset of the payload bytes
    std::uint64_t payload_len = 0;
    std::string key;
  };

  struct ScannedRecord {
    storage::BlobId id;
    IndexEntry entry;
    std::vector<std::uint8_t> payload;
  };

  // Scans the file from the start, collecting every intact record in append
  // order; stops at the first torn/corrupt record (counted into `torn`).
  Status ScanLocked(std::vector<ScannedRecord>* out, bool want_payload,
                    std::uint64_t* torn) const MM_REQUIRES(mu_);
  Status ReindexLocked() MM_REQUIRES(mu_);
  // Trims a torn tail so the next append lands after the last intact record.
  Status TrimLocked() MM_REQUIRES(mu_);
  Status AppendImpl(const JournalRecord& rec, bool torn);

  std::string path_;
  mutable Mutex mu_;
  std::unordered_map<storage::BlobId, IndexEntry, storage::BlobIdHash> index_
      MM_GUARDED_BY(mu_);
  std::uint64_t good_size_ MM_GUARDED_BY(mu_) = 0;
  std::uint64_t record_count_ MM_GUARDED_BY(mu_) = 0;
};

}  // namespace mm::ckpt
