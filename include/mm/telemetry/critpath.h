// Per-epoch critical-path attribution (DESIGN.md §11). Walks the causal
// spans recorded by TraceRecorder and splits the time requesters actually
// waited on into queue-wait / network / device / coherence buckets:
//
//   device     = stager/tier span time inside flow tasks
//   queue_wait = flow task time not covered by device spans (time the
//                request sat in or behind the worker queue)
//   network    = sync-origin time not covered by its tasks (transfer +
//                response legs), plus the full origin span of async flows
//                (write commits, messages — their requester-visible cost
//                is the send leg)
//   coherence  = invalidation / replication spans outside any flow
//
// Together with the virtual-clock compute/stall totals (every rank's
// Advance() is compute, every forward AdvanceTo() is stall) this lets the
// epoch report decompose wall time: compute + stall == wall exactly, and
// the attributed buckets explain where the stall went. Compiled in both
// telemetry modes (TraceEvent exists unconditionally); with telemetry off
// the event list is empty and every bucket is zero.
#pragma once

#include <cstdint>
#include <vector>

#include "mm/telemetry/trace.h"

namespace mm::telemetry {

/// Attributed wait time in virtual nanoseconds.
struct CritpathBreakdown {
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t network_ns = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t coherence_ns = 0;

  std::uint64_t attributed_ns() const {
    return queue_wait_ns + network_ns + device_ns + coherence_ns;
  }
};

/// Attributes every flow whose origin span *ends* in virtual-microsecond
/// window (begin_us, end_us], plus coherence spans ending in the window.
/// Pass the full TraceRecorder::Snapshot(); spans outside the window are
/// ignored except as members of an in-window flow.
CritpathBreakdown AnalyzeCritpath(const std::vector<TraceEvent>& events,
                                  double begin_us, double end_us);

}  // namespace mm::telemetry
