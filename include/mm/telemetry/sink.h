// The per-node telemetry wiring handed down the stack (Service →
// NodeRuntime → BufferManager → TierStore, and Service → Vector): two
// non-owning pointers plus the node id. Components keep a NodeSink by
// value and resolve metric handles from it once at construction.
//
// NodeSink::Dummy() points at shared never-reported instances, so
// components built without telemetry (unit tests, standalone benches)
// need no null checks anywhere.
#pragma once

#include "mm/telemetry/metrics.h"
#include "mm/telemetry/trace.h"

namespace mm::telemetry {

struct NodeSink {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  int node = 0;

  static NodeSink Dummy() {
    return NodeSink{&MetricsRegistry::Dummy(), &TraceRecorder::Dummy(), 0};
  }
};

}  // namespace mm::telemetry
