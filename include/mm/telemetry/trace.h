// Chrome/Perfetto trace recorder (DESIGN.md §11). Records complete ('X')
// spans and instant ('i') events stamped from the *virtual* clock
// (sim::SimTime seconds → microseconds), so the simulated I/O time is what
// shows up on the timeline, not wall time. One process-wide recorder; the
// Chrome `pid` field carries the node id so each node renders as its own
// track, and `tid` carries the rank or worker id within the node.
//
// Storage is a bounded ring: when full, the oldest event is overwritten
// and `dropped()` counts the loss. Recording is off by default; when
// disabled, Complete/Instant are a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mm/util/mutex.h"
#include "mm/util/status.h"

#ifndef MM_TELEMETRY_ENABLED
#define MM_TELEMETRY_ENABLED 1
#endif

namespace mm::telemetry {

/// One trace_event entry. `ts_us`/`dur_us` are virtual microseconds.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';  // 'X' = complete span, 'i' = instant
  double ts_us = 0.0;
  double dur_us = 0.0;  // spans only
  int pid = 0;          // node id
  int tid = 0;          // rank / worker id within the node
};

#if MM_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Recording gate, checked first on every emit path (relaxed atomic).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a complete span covering virtual seconds [begin_s, end_s].
  void Complete(std::string_view name, std::string_view cat, int node, int tid,
                double begin_s, double end_s);

  /// Records an instant event at virtual second `t_s`.
  void Instant(std::string_view name, std::string_view cat, int node, int tid,
               double t_s);

  /// Events in record order, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Serializes to Chrome trace format: {"traceEvents":[...]}.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Never-enabled shared instance for components wired without telemetry.
  static TraceRecorder& Dummy();

 private:
  void Push(TraceEvent ev);

  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  // mm-verify: leaf-lock(trace ring writes only, never calls out while held)
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ MM_GUARDED_BY(mu_);  // insertion ring
  std::size_t head_ MM_GUARDED_BY(mu_) = 0;  // next overwrite slot once full
  std::uint64_t dropped_ MM_GUARDED_BY(mu_) = 0;
};

#else  // !MM_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t = 0) {}
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void Complete(std::string_view, std::string_view, int, int, double, double) {
  }
  void Instant(std::string_view, std::string_view, int, int, double) {}
  std::vector<TraceEvent> Snapshot() const { return {}; }
  std::uint64_t dropped() const { return 0; }
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::string ToJson() const { return "{\"traceEvents\":[]}\n"; }
  Status WriteJson(const std::string&) const { return Status::Ok(); }
  static TraceRecorder& Dummy();
};

#endif  // MM_TELEMETRY_ENABLED

}  // namespace mm::telemetry
