// Chrome/Perfetto trace recorder (DESIGN.md §11). Records complete ('X')
// spans and instant ('i') events stamped from the *virtual* clock
// (sim::SimTime seconds → microseconds), so the simulated I/O time is what
// shows up on the timeline, not wall time. One process-wide recorder; the
// Chrome `pid` field carries the node id so each node renders as its own
// track, and `tid` carries the rank or worker id within the node.
//
// Causal tracing: a `TraceContext` (trace id + parent span id) is minted at
// fault origin, rides through MemoryTask and the comm::Message header, and
// downstream spans recorded with CompleteFlow() carry Perfetto flow events
// ('s' at the origin, 't' on each downstream hop, 'f' closing the flow) so
// one page fault renders as a single connected arrow chain across nodes.
//
// Storage is a bounded ring: when full, the oldest event is overwritten
// and `dropped()` counts the loss. Recording is off by default; when
// disabled, Complete/Instant are a single relaxed atomic load. A second,
// small "flight" ring can be armed independently (set_flight_capacity);
// it keeps the most recent spans even when full tracing is off, so a
// crash can dump a postmortem (flightrec_<rank>.json) from any run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mm/util/mutex.h"
#include "mm/util/status.h"

#ifndef MM_TELEMETRY_ENABLED
#define MM_TELEMETRY_ENABLED 1
#endif

namespace mm::telemetry {

/// Causal identity carried across task queues and the wire. `trace_id`
/// names the whole flow (one page fault / flush / commit); `parent_span`
/// names the span that caused the current hop. Zero trace_id = no flow.
/// Defined outside the MM_TELEMETRY gate: MemoryTask and comm::Message
/// embed it by value in both build modes (two u64s, no behavior).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool valid() const { return trace_id != 0; }
};

/// One trace_event entry. `ts_us`/`dur_us` are virtual microseconds.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';  // 'X' = complete span, 'i' = instant
  double ts_us = 0.0;
  double dur_us = 0.0;  // spans only
  int pid = 0;          // node id
  int tid = 0;          // rank / worker id within the node
  // Flow linkage (CompleteFlow spans only). The serializer expands
  // flow_ph into Perfetto flow companions:
  //   's' sync origin   -> flow 's' at span start + 'f' at span end
  //   'a' async origin  -> flow 's' at span start only
  //   't' downstream hop -> flow 't' at span start
  //   'f' terminal hop   -> flow 't' at span start + 'f' at span end
  // Sync origins (page faults, flushes) enclose their whole flow in
  // virtual time; async flows (write commits, messages) are closed by
  // their terminal hop instead, so the 'f' timestamp is always last.
  std::uint64_t flow_id = 0;
  std::uint64_t span_id = 0;
  char flow_ph = 0;  // 0 = no flow; else one of 's', 'a', 't', 'f'
};

#if MM_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Recording gate, checked first on every emit path (relaxed atomic).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arms the always-on flight ring holding the last `capacity` spans for
  /// postmortems (0 disables). Independent of set_enabled().
  void set_flight_capacity(std::size_t capacity);

  /// Records a complete span covering virtual seconds [begin_s, end_s].
  void Complete(std::string_view name, std::string_view cat, int node, int tid,
                double begin_s, double end_s);

  /// Records a complete span participating in the flow named by `ctx`
  /// (see TraceEvent::flow_ph for the 's'/'a'/'t'/'f' roles). Falls back
  /// to a plain Complete() when ctx is invalid. Returns the new span's id
  /// (0 when nothing was recorded).
  std::uint64_t CompleteFlow(std::string_view name, std::string_view cat,
                             int node, int tid, double begin_s, double end_s,
                             const TraceContext& ctx, char flow_ph);

  /// Records an instant event at virtual second `t_s`.
  void Instant(std::string_view name, std::string_view cat, int node, int tid,
               double t_s);

  /// Mints a fresh flow context rooted at `node`. Ids come from a
  /// process-wide relaxed atomic counter (deterministic across runs with
  /// the same interleaving; never a wall clock or RNG).
  static TraceContext NewContext(int node);

  /// Events in record order, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Most recent flight-ring spans, oldest first (empty when unarmed).
  std::vector<TraceEvent> FlightSnapshot() const;

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Serializes to Chrome trace format: {"traceEvents":[...]}.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Never-enabled shared instance for components wired without telemetry.
  static TraceRecorder& Dummy();

 private:
  void Push(TraceEvent ev);
  std::uint64_t NextSpanId();

  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> flight_on_{false};
  // mm-verify: leaf-lock(trace ring writes only, never calls out while held)
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ MM_GUARDED_BY(mu_);  // insertion ring
  std::size_t head_ MM_GUARDED_BY(mu_) = 0;  // next overwrite slot once full
  std::uint64_t dropped_ MM_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> flight_ MM_GUARDED_BY(mu_);  // postmortem ring
  std::size_t flight_cap_ MM_GUARDED_BY(mu_) = 0;
  std::size_t flight_head_ MM_GUARDED_BY(mu_) = 0;
};

/// RAII ambient trace context for the current thread. The worker loop
/// installs the task's context before Execute() so nested stager/tier
/// spans can join the flow without threading a parameter through every
/// layer.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// The innermost TraceContextScope's context (invalid when none active).
TraceContext CurrentTraceContext();

#else  // !MM_TELEMETRY_ENABLED

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t = 0) {}
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void set_flight_capacity(std::size_t) {}
  void Complete(std::string_view, std::string_view, int, int, double, double) {
  }
  std::uint64_t CompleteFlow(std::string_view, std::string_view, int, int,
                             double, double, const TraceContext&, char) {
    return 0;
  }
  void Instant(std::string_view, std::string_view, int, int, double) {}
  static TraceContext NewContext(int) { return {}; }
  std::vector<TraceEvent> Snapshot() const { return {}; }
  std::vector<TraceEvent> FlightSnapshot() const { return {}; }
  std::uint64_t dropped() const { return 0; }
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::string ToJson() const { return "{\"traceEvents\":[]}\n"; }
  Status WriteJson(const std::string&) const { return Status::Ok(); }
  static TraceRecorder& Dummy();
};

class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext&) {}
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
};

inline TraceContext CurrentTraceContext() { return {}; }

#endif  // MM_TELEMETRY_ENABLED

}  // namespace mm::telemetry
