// mm_report: the runtime-report formatter (DESIGN.md §11). Turns the
// cluster-wide snapshot from Service::TelemetrySnapshot() into (a) a
// paper-style table rendered with util::TablePrinter and (b) per-epoch
// JSON lines, where each epoch reports the counter/histogram deltas since
// the previous epoch (gauges are reported absolute).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mm/telemetry/metrics.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::telemetry {

/// Cluster-wide snapshot: per-node registries plus their aggregate.
struct ClusterSnapshot {
  MetricsSnapshot totals;
  std::vector<MetricsSnapshot> per_node;
};

/// Renders the aggregate as a metric/value table (counters, then gauges,
/// then histograms as count/mean rows).
std::string FormatReportTable(const ClusterSnapshot& snap, bool csv = false);

/// Serializes one snapshot as a JSON object (absolute values).
std::string SnapshotToJson(const MetricsSnapshot& snap);

/// Emits one JSON line per epoch with deltas since the previous epoch.
/// Thread-safe; typically driven once per application iteration and once
/// more at shutdown.
class EpochReporter {
 public:
  /// `path` receives the JSON lines; empty disables writing (Epoch still
  /// returns the formatted line).
  explicit EpochReporter(std::string path = "");
  ~EpochReporter();
  EpochReporter(const EpochReporter&) = delete;
  EpochReporter& operator=(const EpochReporter&) = delete;

  /// Closes the current epoch at virtual time `now_s`: returns the JSON
  /// line {"epoch":N,"t_s":...,"metrics":{...deltas...}} and appends it to
  /// the report file when one was configured.
  std::string Epoch(const ClusterSnapshot& snap, double now_s);

  int epochs() const;

 private:
  mutable Mutex mu_;
  std::FILE* out_ MM_GUARDED_BY(mu_) = nullptr;
  MetricsSnapshot prev_ MM_GUARDED_BY(mu_);
  int epoch_ MM_GUARDED_BY(mu_) = 0;
};

}  // namespace mm::telemetry
