// Per-node metrics registry (DESIGN.md §11): named counters, gauges and
// fixed-bucket histograms backed by relaxed atomics, cheap enough to sit
// next to the §7 hot paths. Handles (Counter*, Gauge*, Histogram*) are
// resolved once at construction time under the registry mutex and then
// incremented lock-free; registration is the only synchronized operation.
//
// Compile-out: configuring with -DMM_TELEMETRY=OFF defines
// MM_TELEMETRY_ENABLED=0 and swaps every class below for a stateless
// inline stub, so instrumentation compiles to nothing.
//
// Metric names follow `mm.<subsystem>.<name>` with a unit suffix
// (`_bytes`, `_ns`, `_count`) — enforced by ci/mm_lint.py rule MML006.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mm/util/mutex.h"

#ifndef MM_TELEMETRY_ENABLED
#define MM_TELEMETRY_ENABLED 1
#endif

namespace mm::telemetry {

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;          // upper bucket bounds, ascending
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Point-in-time copy of a whole registry (std::map for stable report
/// ordering).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Accumulates `other` into this snapshot (cluster-total aggregation).
  void Merge(const MetricsSnapshot& other);
};

#if MM_TELEMETRY_ENABLED

/// Monotonic event counter. Relaxed increments: totals are exact, but
/// cross-metric ordering is unspecified — fine for reporting.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, occupancy). Set/Add are relaxed.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Observe() is lock-free: a binary search over the
/// immutable bounds plus two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  HistogramSnapshot Snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential latency bounds in virtual nanoseconds: 1 µs .. 10 s.
std::vector<double> LatencyBoundsNs();

/// One registry per node. Get* registers on first use and returns a stable
/// pointer (metrics live in deques, never reallocated); subsequent calls
/// with the same name return the same object. Increment through the
/// returned handle, not by name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is consulted only on first registration.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Shared sink for components constructed without telemetry wiring:
  /// callers never need a null check, increments land in a registry nobody
  /// reports on.
  static MetricsRegistry& Dummy();

 private:
  // mm-verify: leaf-lock(registry interning only, never calls out while held)
  mutable Mutex mu_;
  std::deque<Counter> counters_ MM_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ MM_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ MM_GUARDED_BY(mu_);
  std::map<std::string, Counter*> counter_names_ MM_GUARDED_BY(mu_);
  std::map<std::string, Gauge*> gauge_names_ MM_GUARDED_BY(mu_);
  std::map<std::string, Histogram*> histogram_names_ MM_GUARDED_BY(mu_);
};

#else  // !MM_TELEMETRY_ENABLED

// Stateless stubs: every call inlines to nothing, every read returns zero.
class Counter {
 public:
  void Inc(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(std::int64_t) {}
  void Add(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

class Histogram {
 public:
  void Observe(double) {}
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  HistogramSnapshot Snapshot() const { return {}; }
};

inline std::vector<double> LatencyBoundsNs() { return {}; }

class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string&) { return &counter_; }
  Gauge* GetGauge(const std::string&) { return &gauge_; }
  Histogram* GetHistogram(const std::string&, std::vector<double>) {
    return &histogram_;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  static MetricsRegistry& Dummy();

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // MM_TELEMETRY_ENABLED

}  // namespace mm::telemetry
