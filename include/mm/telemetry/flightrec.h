// Crash flight recorder (DESIGN.md §11). Dumps the most recent spans from
// the TraceRecorder's always-on flight ring plus a metrics snapshot to
// `<dir>/flightrec_<rank>.json`, so every crash point, rank kill, and
// kDataLoss leaves a postmortem artifact even when full tracing is off.
//
// Compiled in BOTH telemetry modes: with -DMM_TELEMETRY=OFF the span list
// and metrics come back empty but the file is still written, so crash
// tooling never has to special-case the build.
#pragma once

#include <string>
#include <string_view>

#include "mm/telemetry/metrics.h"
#include "mm/telemetry/trace.h"
#include "mm/util/status.h"

namespace mm::telemetry {

/// Serializes a flight record to JSON (no I/O): {"rank":..,"reason":..,
/// "t_s":..,"spans":[..],"metrics":{..}}. Spans are the flight ring,
/// oldest first. Safe to call from crash paths: only takes the trace and
/// metrics leaf locks, never a buffer-manager or service lock.
std::string FlightRecordJson(int rank, std::string_view reason, double now_s,
                             const TraceRecorder& trace,
                             const MetricsRegistry& metrics);

/// Writes FlightRecordJson to `<dir>/flightrec_<rank>.json`. Overwrites an
/// earlier record for the same rank (the last dump before death wins).
Status WriteFlightRecord(const std::string& dir, int rank,
                         std::string_view reason, double now_s,
                         const TraceRecorder& trace,
                         const MetricsRegistry& metrics);

}  // namespace mm::telemetry
