// Distributed DBSCAN in the µDBSCAN style the paper describes (§IV-A.2):
// a k-d partition recursively splits the dataset by the median of the
// highest-spread axis (estimated from a small random subsample); the
// process group splits alongside the data until each process owns one
// partition (a µcluster region); leaves run an exact grid-accelerated
// DBSCAN locally; finally µclusters are merged through the points that lie
// within eps of any split plane.
//
// Two implementations produce the same clustering:
//   * DbscanMega — the k-d tree is built "by appending samples to the left
//     and right branches" (paper Fig. 3, append-only-global coherence):
//     each level redistributes points through two shared append-only
//     MegaMmap vectors, which the child groups re-read PGAS-style.
//   * DbscanMpi  — the same recursion with explicit message exchange.
//
// Merge approximation (also present in µDBSCAN): two leaf clusters merge
// when locally-core border points of each lie within eps. Exact for
// datasets whose clusters are separated by more than eps (our synthetic
// halo datasets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/apps/points.h"
#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::apps {

struct DbscanConfig {
  double eps = 8.0;
  std::size_t min_pts = 8;
  std::uint64_t seed = 3;
  int sample_per_rank = 64;  // subsample size for median/axis estimation
  /// MegaMmap knobs.
  std::uint64_t page_size = 64 * 1024;
  std::uint64_t pcache_bytes = 4 * 1024 * 1024;
  /// When true, the result carries the full global labeling (allgathered;
  /// use only on datasets small enough to hold per rank).
  bool collect_labels = false;
};

struct DbscanResult {
  std::uint64_t num_clusters = 0;
  std::uint64_t num_noise = 0;
  std::uint64_t num_points = 0;
  /// Global labels indexed by original point index (-1 = noise); filled
  /// only when cfg.collect_labels.
  std::vector<int> labels;
};

/// MegaMmap implementation over a Particle dataset key. Collective.
DbscanResult DbscanMega(core::Service& service, comm::Communicator& comm,
                        const std::string& dataset_key,
                        const DbscanConfig& cfg);

/// MPI-style baseline. Collective.
DbscanResult DbscanMpi(comm::Communicator& comm,
                       const std::string& dataset_key,
                       const DbscanConfig& cfg);

}  // namespace mm::apps
