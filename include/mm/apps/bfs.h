// Graph500-style breadth-first search (the repo's first irregular-access
// app, PR 7). A synthetic R-MAT graph is built into a CSR laid out across
// two MegaMmap vectors (row offsets + column indices); the BFS kernel then
// stresses exactly the access pattern the optimistic read path (DESIGN.md
// §14) exists for: random, read-only page touches with no useful spatial
// locality, where queueing a MemoryTask per fault is pure overhead.
//
//   * GenerateRmat  — deterministic R-MAT edge list (Graph500 kernel 0);
//   * BuildCsr      — in-memory CSR (shared by reference and loader);
//   * MegaBfs       — level-synchronous BFS over CSR-in-mm::Vector,
//                     collective over all ranks, TEPS on the virtual clock;
//   * ReferenceBfs  — single-threaded in-memory traversal, the ground
//                     truth MegaBfs must match depth-for-depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::apps {

/// R-MAT generator knobs (Graph500 defaults: A=.57 B=.19 C=.19 D=.05).
struct RmatConfig {
  int scale = 10;          // 2^scale vertices
  int edge_factor = 16;    // edges = edge_factor * vertices
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
};

struct RmatEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
};

/// Deterministic in cfg.seed. Self-loops and duplicates are kept, exactly
/// as Graph500 kernel 0 emits them (CSR construction tolerates both).
std::vector<RmatEdge> GenerateRmat(const RmatConfig& cfg);

/// In-memory CSR of an undirected view of the edge list (each edge inserted
/// in both directions; self-loops once). rows has n_vertices+1 entries.
struct Csr {
  std::uint64_t n_vertices = 0;
  std::vector<std::uint64_t> rows;
  std::vector<std::uint64_t> cols;
};

Csr BuildCsr(const std::vector<RmatEdge>& edges, std::uint64_t n_vertices);

struct BfsConfig {
  std::uint64_t source = 0;
  /// MegaMmap knobs for the two CSR vectors.
  std::uint64_t page_size = 16 * 1024;
  std::uint64_t pcache_bytes = 256 * 1024;
  /// Key prefix the CSR vectors are created under (rows/cols suffixes).
  std::string key_prefix = "mem://bfs";
};

struct BfsResult {
  /// depth[v] = hops from the source, or kUnreached.
  std::vector<std::int64_t> depth;
  std::uint64_t vertices_visited = 0;
  /// Directed edge traversals performed (both directions of the CSR).
  std::uint64_t edges_traversed = 0;
  /// Traversed edges per simulated second (the Graph500 metric), on the
  /// virtual clock so it is machine-independent.
  double teps = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t faults = 0;  // rank-local page faults in the BFS kernel
};

inline constexpr std::int64_t kBfsUnreached = -1;

/// Ground truth: single-threaded BFS over the in-memory CSR.
std::vector<std::int64_t> ReferenceBfs(const Csr& csr, std::uint64_t source);

/// MegaMmap BFS. Collective over all ranks of `comm`: rank 0 loads `csr`
/// into two shared vectors (write phase), everyone flips them read-only,
/// then each rank expands the frontier vertices it owns (PGAS split) and
/// the newly-discovered frontier is exchanged per level. Deterministic:
/// depths equal ReferenceBfs exactly regardless of rank count.
BfsResult MegaBfs(core::Service& service, comm::Communicator& comm,
                  const Csr& csr, const BfsConfig& cfg);

}  // namespace mm::apps
