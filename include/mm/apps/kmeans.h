// Distributed KMeans (paper §IV-A.2): a KMeans||-style initialization
// (oversampled candidates reduced to k) followed by Lloyd iterations.
// Two implementations share the algorithm:
//   * KMeansMega  — the MegaMmap version (Listing 1 style: shared vector,
//     PGAS partitioning, sequential read-only transactions, optional
//     persisted assignments);
//   * KMeansSpark — the Spark-style baseline on the sparklike engine.
// Both are deterministic in cfg.seed and agree with ReferenceKMeans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/apps/points.h"
#include "mm/apps/sparklike.h"
#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::apps {

struct KMeansConfig {
  int k = 8;
  int max_iter = 4;
  std::uint64_t seed = 7;
  /// Candidates sampled per process for the KMeans||-style init.
  int oversample = 4;  // candidates = oversample * k (cluster-wide)
  /// MegaMmap knobs.
  std::uint64_t page_size = 64 * 1024;
  std::uint64_t pcache_bytes = 1 * 1024 * 1024;  // BoundMemory(MEGABYTES(1))
  /// When nonempty, cluster assignments are persisted to this key through a
  /// file-backed MegaMmap vector (evaluation 4 stores them in a binary
  /// file).
  std::string assign_key;
};

struct KMeansResult {
  std::vector<Point3> centroids;
  double inertia = 0;
  std::uint64_t faults = 0;      // MegaMmap page faults (rank-local)
  std::uint64_t evictions = 0;
};

/// MegaMmap implementation. `dataset_key` names a Particle dataset
/// (posix/spar/shdf). Collective over all ranks of `comm`.
KMeansResult KMeansMega(core::Service& service, comm::Communicator& comm,
                        const std::string& dataset_key,
                        const KMeansConfig& cfg);

/// Spark-style baseline. Collective over `comm` (run it on a TCP-grade
/// cluster for Fig. 5 parity).
KMeansResult KMeansSpark(sparklike::SparkEnv& env, comm::Communicator& comm,
                         const std::string& dataset_key,
                         const KMeansConfig& cfg);

}  // namespace mm::apps
