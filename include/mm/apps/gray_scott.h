// Gray-Scott reaction-diffusion (paper §IV-A.2): a 3-D L^3 grid of two
// species U/V, 1-D slab decomposition over z with periodic boundaries,
// halo-plane exchange per step, optional checkpointing every `plotgap`
// steps.
//
// Two implementations compute bit-identical grids:
//   * GrayScottMega — the grid lives in four MegaMmap vectors (U/V double
//     buffers, kReadWriteGlobal). Own-slab writes are non-overlapping; halo
//     planes are read through the DSM after the barrier (version-based
//     acquire keeps only changed pages refetching). Checkpoints ride the
//     asynchronous staging engine.
//   * GrayScottMpi — plain local slabs, explicit halo Send/Recv, and a
//     selectable checkpoint backend model (Fig. 6's comparators):
//     synchronous PFS (OrangeFS-like), client-local NVM filesystem
//     (Assise-like), or tiered asynchronous buffering (Hermes-like).
//     The MPI grid must fit in node DRAM — allocation past the budget
//     raises the simulated OOM kill (the Fig. 6 cliff).
#pragma once

#include <cstdint>
#include <string>

#include "mm/apps/reference.h"
#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::apps {

enum class CkptBackend {
  kNone,        // plotgap = 0
  kPfsSync,     // OrangeFS-like: synchronous write to the PFS
  kAssiseLike,  // client-local NVM filesystem: synchronous local NVMe write
  kHermesLike,  // tiered async buffering: memcpy now, devices drain behind
};

struct GrayScottConfig {
  std::size_t L = 32;
  int steps = 4;
  int plotgap = 0;  // checkpoint every `plotgap` steps (0 = never)
  GrayScottParams params;
  CkptBackend ckpt = CkptBackend::kNone;  // MPI-baseline backend
  /// Checkpoint/staging target for the Mega version (posix/shdf key); also
  /// used by the MPI baseline as the PFS file path when checkpointing.
  std::string out_key;
  /// MegaMmap knobs.
  std::uint64_t page_size = 64 * 1024;
  std::uint64_t pcache_bytes = 8 * 1024 * 1024;
};

struct GrayScottResult {
  double sum_u = 0;  // global checksums for cross-implementation verification
  double sum_v = 0;
  std::uint64_t bytes_checkpointed = 0;
};

/// MegaMmap implementation. Collective over `comm`.
GrayScottResult GrayScottMega(core::Service& service, comm::Communicator& comm,
                              const GrayScottConfig& cfg);

/// MPI-style baseline. Collective over `comm`. Throws SimOutOfMemoryError
/// when the slabs exceed node DRAM.
GrayScottResult GrayScottMpi(comm::Communicator& comm,
                             const GrayScottConfig& cfg);

}  // namespace mm::apps
