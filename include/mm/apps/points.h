// Shared particle/point types for the paper's four workloads. The datasets
// mirror Gadget-4 output: 3-D float positions and velocities (paper §IV-A.3).
#pragma once

#include <cmath>
#include <cstdint>

namespace mm::apps {

struct Point3 {
  float x = 0, y = 0, z = 0;

  float& axis(int a) { return a == 0 ? x : (a == 1 ? y : z); }
  float axis(int a) const { return a == 0 ? x : (a == 1 ? y : z); }
};

/// Squared euclidean distance (cheap; callers take sqrt when needed).
inline double Dist2(const Point3& a, const Point3& b) {
  double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

inline double Dist(const Point3& a, const Point3& b) {
  return std::sqrt(Dist2(a, b));
}

/// One simulated particle: position + velocity, 6 float32 columns (spar
/// schema "f4x6").
struct Particle {
  Point3 pos;
  Point3 vel;
};

static_assert(sizeof(Point3) == 12);
static_assert(sizeof(Particle) == 24);

/// Index of the nearest centroid to p.
template <typename Centroids>
int NearestCentroid(const Point3& p, const Centroids& ks) {
  int best = 0;
  double best_d = Dist2(p, ks[0]);
  for (std::size_t j = 1; j < ks.size(); ++j) {
    double d = Dist2(p, ks[j]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace mm::apps
