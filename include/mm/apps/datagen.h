// Synthetic cosmology-like dataset generator — the substitute for Gadget-4
// (sanctioned by the paper's own artifact description: "our internal kmeans
// dataset generator ... outputs data in a similar format to Gadget and can
// be used to accelerate reproducibility").
//
// Particles are drawn from `halos` Gaussian clusters ("halo formations")
// whose centers are placed uniformly in a box; velocities follow a smaller
// Gaussian around a per-halo bulk velocity. Generation is deterministic in
// the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/apps/points.h"
#include "mm/util/status.h"

namespace mm::apps {

struct DatagenConfig {
  std::uint64_t num_particles = 100000;
  int halos = 8;
  double box_size = 1000.0;     // box edge length
  double halo_sigma = 12.0;     // spatial spread of one halo
  double vel_sigma = 3.0;       // velocity spread within a halo
  std::uint64_t seed = 0xC0531CULL;
};

/// Ground truth about a generated dataset (used by tests/benches to verify
/// clustering quality).
struct DatagenTruth {
  std::vector<Point3> halo_centers;
  std::vector<int> labels;  // halo id per particle (size num_particles)
};

/// Generates particles in memory. Deterministic in cfg.seed.
DatagenTruth GenerateParticles(const DatagenConfig& cfg,
                               std::vector<Particle>* out);

/// Generates and writes a dataset to a staging backend key (e.g.
/// "spar:///tmp/pts.parquet:f4x6" or "posix:///tmp/pts.bin"). Returns the
/// ground truth.
StatusOr<DatagenTruth> GenerateToBackend(const DatagenConfig& cfg,
                                         const std::string& key);

}  // namespace mm::apps
