// Single-threaded reference implementations used as correctness oracles for
// the parallel MegaMmap / MPI-style / Spark-style applications (paper
// §IV-A.2: "Each algorithm was verified by comparing their outputs ... to
// their published counterparts").
#pragma once

#include <cstdint>
#include <vector>

#include "mm/apps/points.h"

namespace mm::apps {

/// Lloyd iterations from the given initial centroids. Returns the final
/// centroids after exactly `iters` iterations (empty clusters keep their
/// previous centroid).
std::vector<Point3> ReferenceKMeans(const std::vector<Point3>& pts,
                                    std::vector<Point3> centroids, int iters);

/// Sum of squared distances to the nearest centroid.
double ReferenceInertia(const std::vector<Point3>& pts,
                        const std::vector<Point3>& centroids);

/// Exact O(n^2) DBSCAN. Returns per-point cluster ids (>= 0) or -1 for
/// noise. Cluster ids are normalized to first-appearance order.
std::vector<int> ReferenceDbscan(const std::vector<Point3>& pts, double eps,
                                 std::size_t min_pts);

/// Gini impurity of a label multiset.
double GiniImpurity(const std::vector<int>& labels);

/// Fraction of pairs (a,b) that the two labelings agree on being
/// together/apart (Rand index); 1.0 = identical partitions. O(n^2) — use on
/// small inputs only.
double RandIndex(const std::vector<int>& a, const std::vector<int>& b);

/// One Gray-Scott step on a full L^3 double-buffered grid (reference for
/// the distributed versions). U/V sized L*L*L, periodic boundaries.
struct GrayScottParams {
  double Du = 0.2, Dv = 0.1;
  double F = 0.02, k = 0.048;
  double dt = 1.0;
};
void ReferenceGrayScottStep(std::size_t L, const std::vector<double>& u_in,
                            const std::vector<double>& v_in,
                            std::vector<double>* u_out,
                            std::vector<double>* v_out,
                            const GrayScottParams& params);

/// Standard Gray-Scott initial condition: u=1, v=0 everywhere except a
/// centered seed cube of side L/8 where u=0.5, v=0.25.
void GrayScottInit(std::size_t L, std::vector<double>* u,
                   std::vector<double>* v);

}  // namespace mm::apps
