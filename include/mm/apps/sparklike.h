// A miniature Spark-style execution engine reproducing the cost structure
// the paper attributes to Apache Spark in Fig. 5 (DESIGN.md §2):
//   * loading from the backend materializes TWO resident copies (block
//     cache + deserialized objects), and every map stage materializes a new
//     partition while the parent stays cached — 3-4x the DRAM of MegaMmap;
//   * per-stage JVM task dispatch overhead and a scalar compute factor
//     (bytecode/GC) slow per-element work;
//   * shuffles and reductions ride the communicator, which Fig. 5 benches
//     run over the TCP-grade network spec.
// Allocations are tracked against the node's DRAM budget, so Spark
// baselines can OOM where MegaMmap spills to storage.
#pragma once

#include <cstring>
#include <functional>
#include <vector>

#include "mm/comm/communicator.h"
#include "mm/storage/stager.h"

namespace mm::apps::sparklike {

/// Per-executor environment: memory accounting + cost knobs.
class SparkEnv {
 public:
  explicit SparkEnv(comm::RankContext& ctx) : ctx_(&ctx) {}
  ~SparkEnv() { ReleaseAll(); }

  comm::RankContext& ctx() { return *ctx_; }

  /// JVM slowdown applied to per-element compute costs.
  double compute_factor() const { return 1.7; }

  /// Charges one task dispatch (scheduler + serialization round trip).
  void ChargeDispatch() { ctx_->Compute(ctx_->costs().jvm_dispatch_s); }

  /// Tracks an allocation against the node DRAM budget (throws
  /// SimOutOfMemoryError past capacity, like a JVM heap OOM).
  void Alloc(std::uint64_t bytes);
  void Free(std::uint64_t bytes);
  std::uint64_t allocated() const { return allocated_; }

 private:
  void ReleaseAll();

  comm::RankContext* ctx_;
  std::uint64_t allocated_ = 0;
};

/// One partition (this rank's slice) of a resilient distributed dataset.
/// T must be trivially copyable.
template <typename T>
class Rdd {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  Rdd(SparkEnv& env, std::vector<T> data) : env_(&env) {
    data_ = std::move(data);
    charged_ = data_.size() * sizeof(T);
    env_->Alloc(charged_);
  }
  ~Rdd() {
    if (env_ != nullptr) env_->Free(charged_);
  }
  Rdd(Rdd&& other) noexcept
      : env_(other.env_), data_(std::move(other.data_)),
        charged_(other.charged_) {
    other.env_ = nullptr;
    other.charged_ = 0;
  }
  Rdd(const Rdd&) = delete;
  Rdd& operator=(const Rdd&) = delete;

  const std::vector<T>& data() const { return data_; }
  std::size_t size() const { return data_.size(); }

  /// Loads this rank's slice of a backend object. Models Spark's ingest: a
  /// raw block-cache copy stays resident alongside the deserialized
  /// objects (2x memory), and the PFS read is synchronous.
  static Rdd Load(SparkEnv& env, comm::Communicator& comm,
                  const std::string& key);

  /// A map stage: materializes a new RDD (the parent stays cached, as
  /// Spark's lineage cache does). Charges dispatch + the copy.
  template <typename U, typename Fn>
  Rdd<U> Map(Fn&& fn) const {
    env_->ChargeDispatch();
    std::vector<U> out;
    out.reserve(data_.size());
    for (const T& x : data_) out.push_back(fn(x));
    // Materialization cost of the new partition.
    env_->ctx().Compute(static_cast<double>(out.size() * sizeof(U)) /
                        env_->ctx().costs().memcpy_Bps);
    return Rdd<U>(*env_, std::move(out));
  }

  /// A fold over the local partition followed by a cluster-wide tree
  /// reduction (charged on the communicator's network).
  template <typename Acc, typename Fold, typename Merge>
  Acc Aggregate(comm::Communicator& comm, Acc zero, Fold&& fold,
                Merge&& merge) const {
    env_->ChargeDispatch();
    Acc acc = zero;
    for (const T& x : data_) acc = fold(std::move(acc), x);
    std::vector<Acc> one = {acc};
    comm.AllReduce(one, [&](const Acc& a, const Acc& b) { return merge(a, b); });
    return one[0];
  }

 private:
  template <typename U>
  friend class Rdd;

  SparkEnv* env_;
  std::vector<T> data_;
  std::uint64_t charged_ = 0;
};

template <typename T>
Rdd<T> Rdd<T>::Load(SparkEnv& env, comm::Communicator& comm,
                    const std::string& key) {
  auto resolved = storage::StagerRegistry::Default().Resolve(key);
  if (!resolved.ok()) {
    throw std::runtime_error("sparklike::Load: " +
                             resolved.status().ToString());
  }
  auto [stager, uri] = *resolved;
  auto size_or = stager->Size(uri);
  if (!size_or.ok()) {
    throw std::runtime_error("sparklike::Load: " + size_or.status().ToString());
  }
  std::uint64_t total_elems = *size_or / sizeof(T);
  int rank = comm.rank(), nprocs = comm.size();
  std::uint64_t base = total_elems / nprocs, rem = total_elems % nprocs;
  std::uint64_t off =
      rank * base + std::min<std::uint64_t>(rank, rem);
  std::uint64_t count = base + (static_cast<std::uint64_t>(rank) < rem ? 1 : 0);

  // Synchronous read from the PFS.
  std::vector<std::uint8_t> raw;
  Status st = stager->Read(uri, off * sizeof(T), count * sizeof(T), &raw);
  if (!st.ok()) throw std::runtime_error("sparklike::Load: " + st.ToString());
  auto& ctx = env.ctx();
  sim::SimTime done = ctx.world().cluster().pfs().Read(ctx.clock().now(),
                                                       raw.size());
  ctx.clock().AdvanceTo(done);

  // Block-cache copy stays resident for the job (charged, never touched
  // again) + deserialization into objects.
  env.Alloc(raw.size());
  env.ChargeDispatch();
  ctx.Compute(static_cast<double>(raw.size()) / ctx.costs().memcpy_Bps *
              env.compute_factor());
  std::vector<T> objects(count);
  std::memcpy(objects.data(), raw.data(), raw.size());
  return Rdd<T>(env, std::move(objects));
}

}  // namespace mm::apps::sparklike
