// YCSB-style key-value serving workload over mm::BTree (DESIGN.md §15) —
// the first app that addresses the DSM by KEY instead of by offset. A
// shared ordered index is bulk-loaded collectively, then every rank runs a
// configurable read/update/scan mix with zipfian key popularity, the
// access pattern of the ROADMAP's "millions of users" serving story:
//
//   * ZipfianGenerator — YCSB's zeta-based sampler, fully deterministic in
//                        its seed (MML104: no wall clocks, no std::rand);
//   * RunKvWorkload    — collective load + mixed-op phase, per-op latencies
//                        on the virtual clock plus an order-sensitive
//                        result checksum the std::map oracle must match
//                        bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/comm/communicator.h"
#include "mm/core/service.h"
#include "mm/index/btree.h"
#include "mm/util/rng.h"

namespace mm::apps {

/// YCSB-style 100-byte record. Deterministic function of (key, version) so
/// any reader can verify a value without out-of-band state.
struct KvRecord {
  std::uint8_t payload[100];
};

KvRecord MakeRecord(std::uint64_t key, std::uint64_t version);

/// 64-bit digest of a record (for result checksums / oracle comparison).
std::uint64_t RecordDigest(const KvRecord& rec);

using KvTree = index::BTree<std::uint64_t, KvRecord>;

/// YCSB zipfian sampler (Gray et al.'s zeta construction, as in YCSB's
/// ZipfianGenerator): item ranks in [0, n) with P(rank) ∝ 1/rank^theta.
/// Rank 0 is the hottest; callers scatter ranks over the key space with
/// MixU64 so hot keys spread across leaves.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);
  std::uint64_t Next();
  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
  Rng rng_;
};

struct KvConfig {
  std::uint64_t num_keys = 20'000;
  std::uint64_t ops_per_rank = 5'000;
  /// Op mix; fractions must sum to <= 1, the remainder is inserts of new
  /// keys (YCSB-D-style growth). A=0.5/0.5/0, B=0.95/0.05/0, C=1/0/0.
  double read_frac = 0.95;
  double update_frac = 0.05;
  double scan_frac = 0.0;
  std::uint64_t scan_len = 16;
  double zipf_theta = 0.99;
  std::uint64_t seed = 42;
  /// Tree knobs (cache budget ≪ data is the interesting regime).
  index::BTreeOptions tree;
  std::string key_prefix = "mem://kv";
};

struct KvResult {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t scans = 0;
  std::uint64_t scan_items = 0;
  /// Virtual-clock seconds spent in the op phase and per-op latencies by
  /// kind (machine-independent; the bench reports percentiles over these).
  double sim_seconds = 0.0;
  std::vector<double> get_lat_s;
  std::vector<double> update_lat_s;
  std::vector<double> scan_lat_s;
  /// Order-sensitive digest over every op's observed outcome (hit/miss,
  /// record digests, scan keys in order) — the std::map oracle replays the
  /// same deterministic op stream and must produce the same digest.
  std::uint64_t checksum = 0;
  /// Owner-thread descent statistics snapshot after the op phase.
  index::DescentStats stats;
};

/// Collective KV workload: rank 0 creates the tree, all ranks bulk-load a
/// round-robin partition of the key space (record version 0), barrier +
/// coherence refresh, then every rank runs `ops_per_rank` mixed ops on its
/// deterministic zipfian stream. Updates bump the record version to the
/// writing rank's op index, so values stay verifiable.
KvResult RunKvWorkload(core::Service& service, comm::Communicator& comm,
                       const KvConfig& cfg);

/// Single-threaded std::map replay of exactly the op stream `rank` would
/// run in RunKvWorkload against a solo-loaded map — the oracle for the
/// single-rank property test (digests must match bit-for-bit).
std::uint64_t ReferenceKvChecksum(const KvConfig& cfg, int rank);

}  // namespace mm::apps
