// Distributed Random Forest (paper §IV-A.2): each tree is grown from an
// out-of-order-bagging (oob) subsample — every process draws
// N/(oob * p) random samples with replacement (a RandTx in the MegaMmap
// version, propagating the randomness seed to the prefetcher) — and nodes
// are split data-parallel: per-feature Gini impurity gains are computed on
// local samples and all-reduced, the best (feature, threshold) wins, and
// the recursion descends until max_depth or the gain vanishes.
//
// Features are the 6 particle columns (pos.xyz, vel.xyz); labels come from
// a separate int32 vector (the persisted KMeans cluster assignments, as in
// the paper's workflow). Training uses the stratified-by-hash 80% of the
// dataset; accuracy is evaluated on the held-out 20%.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mm/apps/points.h"
#include "mm/apps/sparklike.h"
#include "mm/comm/communicator.h"
#include "mm/core/service.h"

namespace mm::apps {

inline constexpr int kRfFeatures = 6;

/// One decision-tree node (flat array representation).
struct RfNode {
  int feature = -1;     // -1 = leaf
  float threshold = 0;  // go left when x[feature] <= threshold
  int left = -1;
  int right = -1;
  int label = 0;        // majority class (leaves)
};

struct RfTree {
  std::vector<RfNode> nodes;  // node 0 is the root

  int Predict(const Particle& p) const;
};

struct RfConfig {
  int num_trees = 1;
  int max_depth = 10;
  int oob = 4;              // bagging divisor: samples = N / (oob * p) per rank
  int feature_subset = 3;   // random features considered per node
  double min_gain = 1e-4;
  std::size_t min_node = 8;  // stop splitting below this many samples
  std::uint64_t seed = 13;
  /// MegaMmap knobs.
  std::uint64_t page_size = 64 * 1024;
  std::uint64_t pcache_bytes = 4 * 1024 * 1024;
};

struct RfResult {
  std::vector<RfTree> trees;
  double train_accuracy = 0;
  double test_accuracy = 0;
  std::uint64_t faults = 0;
};

/// True when global index i belongs to the held-out test set (~20%,
/// stratified by index hash so both implementations agree).
inline bool IsTestIndex(std::uint64_t i, std::uint64_t seed) {
  return MixU64(seed ^ MixU64(i)) % 5 == 0;
}

/// MegaMmap implementation. `dataset_key` is a Particle dataset;
/// `labels_key` an int32 labels vector of equal length. Collective.
RfResult RandomForestMega(core::Service& service, comm::Communicator& comm,
                          const std::string& dataset_key,
                          const std::string& labels_key, const RfConfig& cfg);

/// Spark-style baseline (same algorithm, sparklike cost structure).
RfResult RandomForestSpark(sparklike::SparkEnv& env, comm::Communicator& comm,
                           const std::string& dataset_key,
                           const std::string& labels_key, const RfConfig& cfg);

}  // namespace mm::apps
