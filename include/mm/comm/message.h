// Message envelope and per-rank mailbox for the in-process message-passing
// substrate (the MPI substitute, DESIGN.md §2). Messages carry the virtual
// delivery time computed by the network model; a receive advances the
// receiver's clock to at least that time.
//
// Reliability (DESIGN.md §13): every point-to-point message carries a
// per-channel sequence number. The link layer may deliver duplicates (fault
// injection); Deposit drops any copy whose sequence was already accepted,
// so the application sees exactly-once delivery. Receives are cancellable:
// the failure detector cancels a wait whose peers are all dead instead of
// blocking forever.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "mm/sim/virtual_clock.h"
#include "mm/util/mutex.h"

namespace mm::comm {

/// Wildcard source for Recv, like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;

struct Message {
  int src = 0;
  int tag = 0;
  /// Per (src, dst) channel sequence number; 0 = unsequenced (never
  /// deduped). Retransmitted/duplicated copies share the original's seq.
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
  sim::SimTime delivered = 0.0;
  /// Causal trace header (DESIGN.md §11): `trace_id` is the flow minted
  /// for this message by the sender, so the receiver can link its recv
  /// span into the same Perfetto flow; `parent_span` carries the flow
  /// that was ambient at the send site (0 = none) for offline causality.
  /// Plain integers, not telemetry types: the header must exist in both
  /// telemetry build modes. Retransmits copy the original's ids, and the
  /// (src, seq) dedup above already guarantees at most one recv span per
  /// logical message.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// One rank's inbox. Thread-safe: any rank may deposit; only the owner pops.
class Mailbox {
 public:
  /// Delivers `msg`, deduping by (src, seq): a duplicate of an
  /// already-accepted sequence number is dropped and counted. Returns
  /// whether the message was accepted.
  bool Deposit(Message msg) {
    bool accepted = true;
    {
      MutexLock lock(mu_);
      if (msg.seq != 0) {
        std::uint64_t& last = last_seq_[msg.src];
        if (msg.seq <= last) {
          accepted = false;
        } else {
          last = msg.seq;
        }
      }
      if (accepted) {
        messages_.push_back(std::move(msg));
      } else {
        ++dups_dropped_;
      }
    }
    cv_.NotifyAll();
    return accepted;
  }

  /// Blocks until a message from `src` (or any source) with `tag` arrives.
  /// Unbounded; prefer TakeWhere with a cancellation predicate on paths
  /// that must survive peer death.
  Message Take(int src, int tag) {
    Message msg;
    // With no cancellation predicate TakeWhere can only return true.
    (void)TakeWhere(
        [src, tag](const Message& m) {
          return (src == kAnySource || m.src == src) && m.tag == tag;
        },
        nullptr, &msg);
    return msg;
  }

  /// Blocks until a queued message satisfies `match`, or `cancelled`
  /// becomes true with no matching message queued. Queued matches win over
  /// cancellation, so a message deposited before its sender died is still
  /// consumed. Returns true when `*out` holds a message, false on
  /// cancellation. Wake-ups come from Deposit and Interrupt.
  bool TakeWhere(const std::function<bool(const Message&)>& match,
                 const std::function<bool()>& cancelled, Message* out) {
    MutexLock lock(mu_);
    while (true) {
      for (auto it = messages_.begin(); it != messages_.end(); ++it) {
        if (match(*it)) {
          *out = std::move(*it);
          messages_.erase(it);
          return true;
        }
      }
      if (cancelled != nullptr && cancelled()) return false;
      cv_.Wait(lock);
    }
  }

  /// Wakes every blocked TakeWhere so it re-evaluates its cancellation
  /// predicate (called by World::KillRank / Revoke).
  void Interrupt() { cv_.NotifyAll(); }

  /// Fencing: drops every queued message from `src` (a rank declared dead
  /// whose in-flight traffic must not leak into the recovered epoch).
  /// Returns the number of messages purged.
  std::size_t PurgeFrom(int src) {
    MutexLock lock(mu_);
    std::size_t purged = 0;
    for (auto it = messages_.begin(); it != messages_.end();) {
      if (it->src == src) {
        it = messages_.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    return purged;
  }

  /// Non-blocking probe: true if a matching message is queued.
  bool Probe(int src, int tag) const {
    MutexLock lock(mu_);
    for (const auto& msg : messages_) {
      if ((src == kAnySource || msg.src == src) && msg.tag == tag) return true;
    }
    return false;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return messages_.size();
  }

  /// Duplicate deliveries dropped by sequence-number dedup.
  std::uint64_t dups_dropped() const {
    MutexLock lock(mu_);
    return dups_dropped_;
  }

 private:
  // mm-verify: leaf-lock(mailbox queue state only, never calls out while held)
  mutable Mutex mu_;
  CondVar cv_;
  std::list<Message> messages_ MM_GUARDED_BY(mu_);
  std::unordered_map<int, std::uint64_t> last_seq_ MM_GUARDED_BY(mu_);
  std::uint64_t dups_dropped_ MM_GUARDED_BY(mu_) = 0;
};

}  // namespace mm::comm
