// Message envelope and per-rank mailbox for the in-process message-passing
// substrate (the MPI substitute, DESIGN.md §2). Messages carry the virtual
// delivery time computed by the network model; a receive advances the
// receiver's clock to at least that time.
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "mm/sim/virtual_clock.h"
#include "mm/util/mutex.h"

namespace mm::comm {

/// Wildcard source for Recv, like MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::uint8_t> payload;
  sim::SimTime delivered = 0.0;
};

/// One rank's inbox. Thread-safe: any rank may deposit; only the owner pops.
class Mailbox {
 public:
  void Deposit(Message msg) {
    {
      MutexLock lock(mu_);
      messages_.push_back(std::move(msg));
    }
    cv_.NotifyAll();
  }

  /// Blocks until a message from `src` (or any source) with `tag` arrives.
  Message Take(int src, int tag) {
    MutexLock lock(mu_);
    while (true) {
      for (auto it = messages_.begin(); it != messages_.end(); ++it) {
        if ((src == kAnySource || it->src == src) && it->tag == tag) {
          Message msg = std::move(*it);
          messages_.erase(it);
          return msg;
        }
      }
      cv_.Wait(lock);
    }
  }

  /// Non-blocking probe: true if a matching message is queued.
  bool Probe(int src, int tag) const {
    MutexLock lock(mu_);
    for (const auto& msg : messages_) {
      if ((src == kAnySource || msg.src == src) && msg.tag == tag) return true;
    }
    return false;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return messages_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::list<Message> messages_ MM_GUARDED_BY(mu_);
};

}  // namespace mm::comm
