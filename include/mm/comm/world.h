// World: the process group of a simulated job. Owns the mailboxes, the
// rank→node placement, and the barrier machinery. Created by SimCluster
// (launch.h); application code talks to it through Communicator.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mm/comm/message.h"
#include "mm/sim/cluster.h"
#include "mm/sim/cost_model.h"
#include "mm/sim/virtual_clock.h"
#include "mm/util/mutex.h"

namespace mm::comm {

class World {
 public:
  /// Ranks are laid out block-wise over nodes: rank r lives on node
  /// r / ranks_per_node.
  World(sim::Cluster* cluster, int num_ranks, int ranks_per_node);

  int num_ranks() const { return num_ranks_; }
  int ranks_per_node() const { return ranks_per_node_; }
  std::size_t NodeOfRank(int rank) const {
    return static_cast<std::size_t>(rank / ranks_per_node_);
  }

  sim::Cluster& cluster() { return *cluster_; }
  const sim::CostModel& costs() const { return costs_; }
  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Global barrier across all ranks: blocks until every rank arrives, and
  /// advances every participant's virtual time to the max arrival time plus
  /// a log(n) synchronization cost.
  sim::SimTime Barrier(int rank, sim::SimTime arrival);

  /// Barrier with a serial section: the last-arriving rank runs `serial`
  /// ALONE — every other rank stays parked until it finishes — passing the
  /// post-synchronization virtual time and returning its completion time.
  /// Everyone is then released at max(serial completion, sync time). Used
  /// by collective checkpoints, where quiesce-and-publish must not race
  /// application traffic from other ranks. `serial` may be null.
  sim::SimTime Barrier(int rank, sim::SimTime arrival,
                       const std::function<sim::SimTime(sim::SimTime)>* serial);

 private:
  sim::Cluster* cluster_;
  int num_ranks_;
  int ranks_per_node_;
  sim::CostModel costs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Reusable generation-counted barrier.
  Mutex barrier_mu_;
  CondVar barrier_cv_;
  int barrier_count_ MM_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ MM_GUARDED_BY(barrier_mu_) = 0;
  sim::SimTime barrier_max_ MM_GUARDED_BY(barrier_mu_) = 0.0;
  sim::SimTime barrier_release_ MM_GUARDED_BY(barrier_mu_) = 0.0;
};

/// Per-rank execution context handed to the application body. Carries the
/// rank id, its virtual clock, and the world.
class RankContext {
 public:
  RankContext(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->num_ranks(); }
  std::size_t node() const { return world_->NodeOfRank(rank_); }
  World& world() { return *world_; }
  sim::VirtualClock& clock() { return clock_; }
  const sim::CostModel& costs() const { return world_->costs(); }

  /// Charges compute time to this rank's virtual clock.
  void Compute(double seconds) { clock_.Advance(seconds); }

 private:
  World* world_;
  int rank_;
  sim::VirtualClock clock_;
};

}  // namespace mm::comm
