// World: the process group of a simulated job. Owns the mailboxes, the
// rank→node placement, the barrier machinery, and — since the robustness
// PR (DESIGN.md §13) — the membership state: which ranks are alive, the
// failure-detector parameters, per-channel sequence counters, and the
// communicator revocation flag used by collective recovery. Created by
// RunRanks (launch.h); application code talks to it through Communicator.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mm/comm/message.h"
#include "mm/sim/cluster.h"
#include "mm/sim/cost_model.h"
#include "mm/sim/fault.h"
#include "mm/sim/virtual_clock.h"
#include "mm/telemetry/metrics.h"
#include "mm/telemetry/trace.h"
#include "mm/util/mutex.h"

namespace mm::comm {

/// Thrown by a rank that just registered its own death (RankKillSpec
/// trigger): the rank unwinds out of the application body exactly like a
/// SimOutOfMemoryError, and the launcher reports it in
/// RunResult::dead_ranks rather than as a job error.
class RankDeathError : public std::runtime_error {
 public:
  explicit RankDeathError(int rank)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " killed by fault injection"),
        rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Failure-detector knobs (DESIGN.md §13): a peer is declared dead after
/// `miss_threshold` consecutive missed heartbeats, so the virtual-time cost
/// of a death verdict is heartbeat_interval_s * miss_threshold.
struct FailureDetectorOptions {
  double heartbeat_interval_s = 250e-6;
  int miss_threshold = 4;

  double DetectionLatency() const {
    return heartbeat_interval_s * miss_threshold;
  }
};

/// Launch-time robustness configuration of a World.
struct WorldOptions {
  sim::RankKillSpec kill;
  FailureDetectorOptions detector;
  /// Invoked once per rank death, after the death is registered and the
  /// rank's barrier/receive parks are released, outside any World lock.
  /// The flight-recorder wiring uses this to dump a postmortem
  /// (flightrec_<rank>.json) at the moment of a kill.
  std::function<void(int rank, sim::SimTime now)> death_observer;
};

class World {
 public:
  /// Ranks are laid out block-wise over nodes: rank r lives on node
  /// r / ranks_per_node.
  World(sim::Cluster* cluster, int num_ranks, int ranks_per_node,
        WorldOptions options = {});

  int num_ranks() const { return num_ranks_; }
  int ranks_per_node() const { return ranks_per_node_; }
  std::size_t NodeOfRank(int rank) const {
    return static_cast<std::size_t>(rank / ranks_per_node_);
  }

  sim::Cluster& cluster() { return *cluster_; }
  const sim::CostModel& costs() const { return costs_; }
  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  const FailureDetectorOptions& detector() const { return options_.detector; }

  /// Comm-layer metrics (mm.net.*): retransmissions mirrored from the
  /// network model, heartbeat misses charged by death verdicts.
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  /// Trace recorder for comm-layer spans (msg_send/msg_recv flows).
  /// Defaults to the never-enabled dummy; benches and tests point it at
  /// the service's recorder to get one merged timeline.
  void set_trace(telemetry::TraceRecorder* trace) { trace_ = trace; }
  telemetry::TraceRecorder& trace() { return *trace_; }

  // ---- critical-path wall accounting (DESIGN.md §11) ----

  /// Per-rank compute/stall accumulators fed by every RankContext clock
  /// (sim layer takes raw atomics; see VirtualClock::SetCritpathSinks).
  std::atomic<std::uint64_t>* CritpathComputeSink(int rank) {
    return &critpath_compute_ns_[rank];
  }
  std::atomic<std::uint64_t>* CritpathStallSink(int rank) {
    return &critpath_stall_ns_[rank];
  }
  /// Totals across ranks: {compute_ns, stall_ns}. compute + stall equals
  /// the sum of every rank's clock position, exactly.
  std::pair<std::uint64_t, std::uint64_t> CritpathTotals() const;

  /// Next sequence number on the (src → dst) channel (1-based; 0 means
  /// unsequenced in Message).
  std::uint64_t NextSeq(int src, int dst) {
    return send_seq_[static_cast<std::size_t>(src) * num_ranks_ + dst]
               .fetch_add(1, std::memory_order_relaxed) +
           1;
  }

  // ---- membership (DESIGN.md §13) ----

  /// Sticky rank death at virtual time `now`: removes the rank from the
  /// live set, releases it from a barrier it may be parked in, and
  /// interrupts every blocked receive so cancellation predicates re-run.
  void KillRank(int rank, sim::SimTime now);

  bool RankDead(int rank) const {
    return dead_[rank].load(std::memory_order_acquire);
  }
  /// Virtual time of death (meaningful only when RankDead(rank)).
  sim::SimTime DeathTime(int rank) const {
    return death_time_[rank].load(std::memory_order_relaxed);
  }
  int live_ranks() const {
    return live_ranks_.load(std::memory_order_acquire);
  }
  std::vector<int> LiveRanks() const;
  /// Bumped on every death; lets survivors detect membership changes.
  std::uint64_t membership_epoch() const {
    return membership_epoch_.load(std::memory_order_acquire);
  }
  /// True when every rank placed on `node` is dead.
  bool NodeIsDead(std::size_t node) const;

  /// Self-kill hook called by Communicator at every comm operation: when
  /// the kill plan triggers for `rank`, registers the death and throws
  /// RankDeathError. The per-rank op counter makes `after_comm_ops`
  /// triggers exact regardless of interleaving.
  void MaybeSelfKill(int rank, sim::SimTime now);

  // ---- revocation & fencing (collective recovery) ----

  /// Marks the world's communicators revoked: every pending and future
  /// cancellable receive returns kPeerDead so all survivors abandon their
  /// half-finished collectives and converge on the recovery barrier
  /// (ULFM-style revoke).
  void Revoke();
  bool Revoked() const { return revoked_.load(std::memory_order_acquire); }
  /// Cleared by the recovery leader inside the barrier serial section, once
  /// every survivor is parked and the dead are fenced.
  void ClearRevoke() { revoked_.store(false, std::memory_order_release); }

  /// Purges every dead rank's queued messages from all mailboxes so stale
  /// in-flight traffic cannot leak into the recovered epoch. Idempotent;
  /// call while quiesced (barrier serial section). Returns messages purged.
  std::size_t FenceDeadRanks();

  // ---- barrier ----

  /// Global barrier across all *live* ranks: blocks until every live rank
  /// arrives, and advances every participant's virtual time to the max
  /// arrival time plus a log(n) synchronization cost. A rank killed while
  /// parked is released immediately and unwinds via RankDeathError; the
  /// remaining live ranks release without it.
  sim::SimTime Barrier(int rank, sim::SimTime arrival);

  /// Barrier with a serial section: the last-arriving rank runs `serial`
  /// ALONE — every other rank stays parked until it finishes — passing the
  /// post-synchronization virtual time and returning its completion time.
  /// Everyone is then released at max(serial completion, sync time). Used
  /// by collective checkpoints, where quiesce-and-publish must not race
  /// application traffic from other ranks. `serial` may be null.
  sim::SimTime Barrier(int rank, sim::SimTime arrival,
                       const std::function<sim::SimTime(sim::SimTime)>* serial);

 private:
  static constexpr std::uint64_t kNotParked = ~std::uint64_t{0};

  sim::Cluster* cluster_;
  int num_ranks_;
  int ranks_per_node_;
  WorldOptions options_;
  sim::CostModel costs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Membership. dead_ flags are written once (CAS) after death_time_, so an
  // acquire-load of the flag also sees the time.
  std::vector<std::atomic<bool>> dead_;
  std::vector<std::atomic<double>> death_time_;
  std::vector<std::atomic<std::uint64_t>> comm_ops_;
  std::atomic<int> live_ranks_;
  std::atomic<std::uint64_t> membership_epoch_{0};
  std::atomic<bool> revoked_{false};
  std::atomic<bool> fenced_any_{false};
  std::vector<std::atomic<std::uint64_t>> send_seq_;
  telemetry::MetricsRegistry metrics_;
  telemetry::TraceRecorder* trace_ = &telemetry::TraceRecorder::Dummy();
  std::vector<std::atomic<std::uint64_t>> critpath_compute_ns_;
  std::vector<std::atomic<std::uint64_t>> critpath_stall_ns_;

  // Reusable generation-counted barrier, death-aware: the release condition
  // is "every live rank arrived"; parked_gen_ records which generation a
  // rank is parked in so KillRank can retract its arrival.
  Mutex barrier_mu_;
  CondVar barrier_cv_;
  int barrier_count_ MM_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ MM_GUARDED_BY(barrier_mu_) = 0;
  sim::SimTime barrier_max_ MM_GUARDED_BY(barrier_mu_) = 0.0;
  sim::SimTime barrier_release_ MM_GUARDED_BY(barrier_mu_) = 0.0;
  bool barrier_releasing_ MM_GUARDED_BY(barrier_mu_) = false;
  std::vector<std::uint64_t> parked_gen_ MM_GUARDED_BY(barrier_mu_);
};

/// Per-rank execution context handed to the application body. Carries the
/// rank id, its virtual clock, and the world.
class RankContext {
 public:
  RankContext(World* world, int rank) : world_(world), rank_(rank) {
    // Route this rank's compute/stall into the world's critical-path
    // accounting; compute + stall then equals wall time per rank.
    clock_.SetCritpathSinks(world_->CritpathComputeSink(rank),
                            world_->CritpathStallSink(rank));
  }

  int rank() const { return rank_; }
  int size() const { return world_->num_ranks(); }
  std::size_t node() const { return world_->NodeOfRank(rank_); }
  World& world() { return *world_; }
  sim::VirtualClock& clock() { return clock_; }
  const sim::CostModel& costs() const { return world_->costs(); }

  /// Charges compute time to this rank's virtual clock.
  void Compute(double seconds) { clock_.Advance(seconds); }

 private:
  World* world_;
  int rank_;
  sim::VirtualClock clock_;
};

}  // namespace mm::comm
