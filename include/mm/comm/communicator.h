// Communicator: MPI-flavored typed point-to-point and collective operations
// over the simulated World. Collectives use binomial-tree algorithms
// (paper §III-C "Collective": tree-based patterns similar to MPICH
// allgather) so fan-in/fan-out costs scale as log(p).
//
// All operations are expressed against a *group* of world ranks, so
// sub-communicators (Split) behave like MPI_Comm_split — DBSCAN and Random
// Forest use them to recurse over left/right partitions.
#pragma once

#include <cstring>
#include <functional>
#include <vector>

#include "mm/comm/world.h"
#include "mm/util/status.h"

namespace mm::comm {

class Communicator {
 public:
  /// World communicator for `ctx`.
  explicit Communicator(RankContext* ctx);

  /// Sub-communicator over `group` (world ranks); `ctx->rank()` must be in
  /// the group.
  Communicator(RankContext* ctx, std::vector<int> group);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_.size()); }
  int WorldRank(int index) const { return group_[index]; }
  RankContext& ctx() { return *ctx_; }

  // ---- point-to-point (ranks are communicator-local indices) ----

  /// Sends `bytes` to `dst`. The sender's clock advances past egress; the
  /// message is stamped with its simulated delivery time.
  void SendBytes(int dst, int tag, const void* data, std::size_t size);

  /// Blocking receive from `src` (or kAnySource). Advances the receiver's
  /// clock to the delivery time. Returns the payload.
  std::vector<std::uint8_t> RecvBytes(int src, int tag, int* actual_src = nullptr);

  /// Typed convenience wrappers for trivially copyable element types.
  template <typename T>
  void Send(int dst, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendBytes(dst, tag, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  void SendValue(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendBytes(dst, tag, &value, sizeof(T));
  }

  template <typename T>
  std::vector<T> Recv(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = RecvBytes(src, tag, actual_src);
    MM_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  template <typename T>
  T RecvValue(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = RecvBytes(src, tag, actual_src);
    MM_CHECK(bytes.size() == sizeof(T));
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  // ---- collectives ----

  /// Synchronizes all communicator members and their virtual clocks.
  void Barrier();

  /// Barrier whose last-arriving member runs `serial` alone — with every
  /// other rank still parked — before anyone is released (see
  /// World::Barrier). Only valid on the world communicator: a sub-group
  /// cannot quiesce the whole job. The checkpoint collective is built on
  /// this.
  [[nodiscard]] Status BarrierSerial(
      const std::function<sim::SimTime(sim::SimTime)>& serial);

  /// Binomial-tree broadcast from `root` (communicator-local index).
  template <typename T>
  void Bcast(std::vector<T>& data, int root);

  /// Tree reduction of per-rank vectors with `op` applied elementwise;
  /// result is valid on `root` only.
  template <typename T, typename Op>
  void Reduce(std::vector<T>& data, int root, Op op);

  /// Reduce + Bcast.
  template <typename T, typename Op>
  void AllReduce(std::vector<T>& data, Op op);

  /// Gathers variable-length vectors to `root`; result on root is indexed by
  /// communicator-local rank.
  template <typename T>
  std::vector<std::vector<T>> GatherV(const std::vector<T>& mine, int root);

  /// GatherV + Bcast of the concatenation.
  template <typename T>
  std::vector<T> AllGatherV(const std::vector<T>& mine);

  /// Scatters `parts[i]` from root to rank i.
  template <typename T>
  std::vector<T> ScatterV(const std::vector<std::vector<T>>& parts, int root);

  /// Creates a sub-communicator: ranks sharing `color` form a group ordered
  /// by current rank. Collective over this communicator.
  Communicator Split(int color);

 private:
  int TagFor(int user_tag) const { return (color_epoch_ << 16) | user_tag; }

  RankContext* ctx_;
  std::vector<int> group_;   // communicator index -> world rank
  int my_index_;
  int color_epoch_ = 0;      // disambiguates tags across Split generations
};

// ---- template implementations ----

template <typename T>
void Communicator::Bcast(std::vector<T>& data, int root) {
  // Binomial tree rooted at `root`. In relative ranks, a nonzero rank
  // receives from its parent (lowest set bit cleared) and then forwards to
  // rel + 2^j for j below its lowest set bit.
  int n = size();
  if (n == 1) return;
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x1B;
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  int start_j;
  if (rel != 0) {
    int low = __builtin_ctz(static_cast<unsigned>(rel));
    int parent_rel = rel & (rel - 1);
    data = Recv<T>((parent_rel + root) % n, TagFor(kTag));
    start_j = low - 1;
  } else {
    start_j = rounds - 1;
  }
  for (int j = start_j; j >= 0; --j) {
    int child_rel = rel + (1 << j);
    if (child_rel < n) {
      Send<T>((child_rel + root) % n, TagFor(kTag), data);
    }
  }
}

template <typename T, typename Op>
void Communicator::Reduce(std::vector<T>& data, int root, Op op) {
  int n = size();
  if (n == 1) return;
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x2C;
  // Binomial-tree fan-in: at round k, ranks with bit k set send to rel-2^k.
  for (int k = 0; (1 << k) < n; ++k) {
    if (rel & (1 << k)) {
      Send<T>(((rel ^ (1 << k)) + root) % n, TagFor(kTag), data);
      return;  // contributed and done
    }
    int peer_rel = rel | (1 << k);
    if (peer_rel < n) {
      auto theirs = Recv<T>((peer_rel + root) % n, TagFor(kTag));
      MM_CHECK(theirs.size() == data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = op(data[i], theirs[i]);
      }
    }
  }
}

template <typename T, typename Op>
void Communicator::AllReduce(std::vector<T>& data, Op op) {
  Reduce(data, /*root=*/0, op);
  Bcast(data, /*root=*/0);
}

template <typename T>
std::vector<std::vector<T>> Communicator::GatherV(const std::vector<T>& mine,
                                                  int root) {
  int n = size();
  constexpr int kTag = 0x3D;
  std::vector<std::vector<T>> all;
  if (my_index_ == root) {
    all.resize(n);
    all[root] = mine;
    for (int i = 0; i < n - 1; ++i) {
      int src = kAnySource;
      auto payload = Recv<T>(src, TagFor(kTag), &src);
      // Map world rank back to communicator index.
      for (int j = 0; j < n; ++j) {
        if (group_[j] == src) {
          all[j] = std::move(payload);
          break;
        }
      }
    }
  } else {
    Send<T>(root, TagFor(kTag), mine);
  }
  return all;
}

template <typename T>
std::vector<T> Communicator::AllGatherV(const std::vector<T>& mine) {
  auto parts = GatherV(mine, /*root=*/0);
  std::vector<T> flat;
  if (my_index_ == 0) {
    for (auto& part : parts) {
      flat.insert(flat.end(), part.begin(), part.end());
    }
  }
  Bcast(flat, /*root=*/0);
  return flat;
}

template <typename T>
std::vector<T> Communicator::ScatterV(const std::vector<std::vector<T>>& parts,
                                      int root) {
  constexpr int kTag = 0x4E;
  int n = size();
  if (my_index_ == root) {
    MM_CHECK(static_cast<int>(parts.size()) == n);
    for (int i = 0; i < n; ++i) {
      if (i != root) Send<T>(i, TagFor(kTag), parts[i]);
    }
    return parts[root];
  }
  return Recv<T>(root, TagFor(kTag));
}

}  // namespace mm::comm
