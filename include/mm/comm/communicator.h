// Communicator: MPI-flavored typed point-to-point and collective operations
// over the simulated World. Collectives use binomial-tree algorithms
// (paper §III-C "Collective": tree-based patterns similar to MPICH
// allgather) so fan-in/fan-out costs scale as log(p).
//
// All operations are expressed against a *group* of world ranks, so
// sub-communicators (Split) behave like MPI_Comm_split — DBSCAN and Random
// Forest use them to recurse over left/right partitions.
//
// Failure handling (DESIGN.md §13): the blocking Recv*/collective calls
// assume immortal peers and abort (MM_CHECK) if a peer dies mid-wait. The
// *Or variants are deadline-bounded: they return kPeerDead once the failure
// detector declares an expected peer dead (charging the detection latency
// to the virtual clock) and propagate the verdict through the binomial
// trees as poison envelopes so no rank ever hangs. After a kPeerDead
// verdict, survivors call Revoke() + ShrinkAfterFailure() (or
// ckpt::CollectiveRecover) to fence the dead and continue on a shrunk
// communicator.
#pragma once

#include <cstring>
#include <functional>
#include <vector>

#include "mm/comm/world.h"
#include "mm/util/status.h"

namespace mm::comm {

class Communicator {
 public:
  /// World communicator for `ctx`.
  explicit Communicator(RankContext* ctx);

  /// Sub-communicator over `group` (world ranks); `ctx->rank()` must be in
  /// the group.
  Communicator(RankContext* ctx, std::vector<int> group);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(group_.size()); }
  int WorldRank(int index) const { return group_[index]; }
  RankContext& ctx() { return *ctx_; }

  // ---- point-to-point (ranks are communicator-local indices) ----

  /// Sends `bytes` to `dst`. The sender's clock advances past egress; the
  /// message is stamped with its simulated delivery time and a per-channel
  /// sequence number (injected duplicates are deduped by the receiver).
  void SendBytes(int dst, int tag, const void* data, std::size_t size);

  /// Blocking receive from `src` (or kAnySource). Advances the receiver's
  /// clock to the delivery time. Returns the payload. Aborts (MM_CHECK) if
  /// the peer dies while waiting — use RecvBytesOr on paths that must
  /// survive node death.
  std::vector<std::uint8_t> RecvBytes(int src, int tag,
                                      int* actual_src = nullptr);

  /// Deadline-bounded receive: returns kPeerDead once every rank that could
  /// still satisfy the match is declared dead by the failure detector (or
  /// the world is revoked by a survivor running recovery). The death
  /// verdict charges miss_threshold heartbeat intervals to the caller's
  /// virtual clock.
  StatusOr<std::vector<std::uint8_t>> RecvBytesOr(int src, int tag,
                                                  int* actual_src = nullptr);

  /// Typed convenience wrappers for trivially copyable element types.
  template <typename T>
  void Send(int dst, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendBytes(dst, tag, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  void SendValue(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendBytes(dst, tag, &value, sizeof(T));
  }

  /// Typed receive that degrades instead of aborting: kPeerDead when the
  /// sender died, kDataLoss when the payload is malformed (truncated or not
  /// a whole number of elements).
  template <typename T>
  StatusOr<std::vector<T>> RecvOr(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = RecvBytesOr(src, tag, actual_src);
    if (!bytes.ok()) return bytes.status();
    if (bytes->size() % sizeof(T) != 0) {
      return DataLoss("malformed payload: " + std::to_string(bytes->size()) +
                      " bytes is not a whole number of " +
                      std::to_string(sizeof(T)) + "-byte elements");
    }
    std::vector<T> out(bytes->size() / sizeof(T));
    std::memcpy(out.data(), bytes->data(), bytes->size());
    return out;
  }

  template <typename T>
  StatusOr<T> RecvValueOr(int src, int tag, int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = RecvBytesOr(src, tag, actual_src);
    if (!bytes.ok()) return bytes.status();
    if (bytes->size() != sizeof(T)) {
      return DataLoss("malformed payload: got " +
                      std::to_string(bytes->size()) + " bytes, want " +
                      std::to_string(sizeof(T)));
    }
    T value;
    std::memcpy(&value, bytes->data(), sizeof(T));
    return value;
  }

  template <typename T>
  std::vector<T> Recv(int src, int tag, int* actual_src = nullptr) {
    auto out = RecvOr<T>(src, tag, actual_src);
    MM_CHECK_MSG(out.ok(), out.status().ToString());
    return std::move(out).value();
  }

  template <typename T>
  T RecvValue(int src, int tag, int* actual_src = nullptr) {
    auto out = RecvValueOr<T>(src, tag, actual_src);
    MM_CHECK_MSG(out.ok(), out.status().ToString());
    return std::move(out).value();
  }

  // ---- collectives ----

  /// Synchronizes all communicator members and their virtual clocks.
  void Barrier();

  /// Death-aware barrier: synchronizes the *live* members and returns
  /// kPeerDead when any member of this communicator is dead at release —
  /// the caller must run recovery before trusting collective results.
  [[nodiscard]] Status BarrierOr();

  /// Barrier whose last-arriving member runs `serial` alone — with every
  /// other rank still parked — before anyone is released (see
  /// World::Barrier). Only valid on the world communicator: a sub-group
  /// cannot quiesce the whole job. The checkpoint collective is built on
  /// this.
  [[nodiscard]] Status BarrierSerial(
      const std::function<sim::SimTime(sim::SimTime)>& serial);

  /// Binomial-tree broadcast from `root` (communicator-local index).
  template <typename T>
  void Bcast(std::vector<T>& data, int root);

  /// Tree reduction of per-rank vectors with `op` applied elementwise;
  /// result is valid on `root` only.
  template <typename T, typename Op>
  void Reduce(std::vector<T>& data, int root, Op op);

  /// Reduce + Bcast.
  template <typename T, typename Op>
  void AllReduce(std::vector<T>& data, Op op);

  /// Gathers variable-length vectors to `root`; result on root is indexed by
  /// communicator-local rank.
  template <typename T>
  std::vector<std::vector<T>> GatherV(const std::vector<T>& mine, int root);

  /// GatherV + Bcast of the concatenation.
  template <typename T>
  std::vector<T> AllGatherV(const std::vector<T>& mine);

  /// Scatters `parts[i]` from root to rank i.
  template <typename T>
  std::vector<T> ScatterV(const std::vector<std::vector<T>>& parts, int root);

  // ---- death-aware collectives (poison-envelope trees) ----
  //
  // Each message carries a one-byte verdict header. A rank whose parent or
  // subtree failed still forwards a poison envelope to its children, so the
  // tree always unwinds: every rank returns (Ok or kPeerDead), nobody
  // hangs. On kPeerDead the data is partial/garbage; run recovery and redo
  // the collective on the shrunk communicator.

  template <typename T>
  [[nodiscard]] Status BcastOr(std::vector<T>& data, int root) {
    return BcastEnvelope(data, root, StatusCode::kOk);
  }

  template <typename T, typename Op>
  [[nodiscard]] Status ReduceOr(std::vector<T>& data, int root, Op op);

  template <typename T, typename Op>
  [[nodiscard]] Status AllReduceOr(std::vector<T>& data, Op op) {
    Status rs = ReduceOr(data, /*root=*/0, op);
    // The root seeds the broadcast with the reduction's verdict so every
    // survivor learns the collective failed, not just the root.
    Status bs = BcastEnvelope(
        data, /*root=*/0, my_index_ == 0 ? rs.code() : StatusCode::kOk);
    return !rs.ok() ? rs : bs;
  }

  /// Gathers to `root` into `*all` (indexed by communicator rank; dead
  /// members leave empty slots). Non-root ranks only contribute and always
  /// return Ok unless they themselves are cancelled.
  template <typename T>
  [[nodiscard]] Status GatherVOr(const std::vector<T>& mine, int root,
                                 std::vector<std::vector<T>>* all);

  /// Scatters `parts[i]` from root into `*mine`; kPeerDead when the root
  /// died before serving this rank.
  template <typename T>
  [[nodiscard]] Status ScatterVOr(const std::vector<std::vector<T>>& parts,
                                  int root, std::vector<T>* mine);

  /// Creates a sub-communicator: ranks sharing `color` form a group ordered
  /// by current rank. Collective over this communicator.
  Communicator Split(int color);

  // ---- recovery (DESIGN.md §13 fencing protocol) ----

  /// Marks the world revoked: all pending/future cancellable receives
  /// return kPeerDead, pulling every survivor out of half-finished
  /// collectives and into the recovery barrier. Call on a kPeerDead
  /// verdict, before ShrinkAfterFailure / ckpt::CollectiveRecover.
  void Revoke() { ctx_->world().Revoke(); }

  /// Survivor communicator: the live members of this group in order, with a
  /// fresh tag epoch so stale in-flight messages from the failed epoch can
  /// never match. Purely local — membership is shared state, so all
  /// survivors compute the same group without communicating. Call only
  /// after a synchronization point (ShrinkAfterFailure does it for you).
  Communicator Shrink();

  /// Post-failure membership reconciliation on the world communicator:
  /// synchronizes all live ranks, fences the dead (purges their undelivered
  /// messages), clears the revocation, and returns the survivor
  /// communicator.
  StatusOr<Communicator> ShrinkAfterFailure();

 private:
  /// Verdict + payload of one death-aware tree message.
  struct Envelope {
    StatusCode code = StatusCode::kOk;
    std::vector<std::uint8_t> payload;
    int src_world = -1;
  };

  int TagFor(int user_tag) const {
    // A user tag must fit the low 16 bits; anything wider would silently
    // collide with another Split generation's tag space.
    MM_CHECK_MSG(user_tag >= 0 && (user_tag & ~0xFFFF) == 0,
                 "comm tag must be within [0, 65535]");
    return (color_epoch_ << 16) | user_tag;
  }

  /// Comm-op entry hook: triggers the configured self-kill and stops
  /// already-dead (zombie) ranks from sending. Throws RankDeathError.
  void CheckAlive();

  /// Core bounded receive: blocks for a message with `wire_tag` from any of
  /// `srcs_world` (all group members but me when empty); cancels with
  /// kPeerDead when every candidate is dead or the world is revoked.
  StatusOr<std::vector<std::uint8_t>> RecvBytesMatch(
      const std::vector<int>& srcs_world, int wire_tag, int* actual_src_world);

  /// Envelope plumbing for the death-aware trees (dst/pending are
  /// communicator-local indices).
  void SendEnvelope(int dst, int tag, StatusCode code, const void* data,
                    std::size_t size);
  StatusOr<Envelope> RecvEnvelopeFrom(const std::vector<int>& pending, int tag);

  template <typename T>
  void SendEnvelopeVec(int dst, int tag, StatusCode code,
                       const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    SendEnvelope(dst, tag, code, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  static Status DecodeEnvelope(const Envelope& env, std::vector<T>* out) {
    if (env.code != StatusCode::kOk) {
      return PeerDead("poisoned subtree: " +
                      std::string(StatusCodeName(env.code)));
    }
    if (env.payload.size() % sizeof(T) != 0) {
      return DataLoss("malformed envelope payload");
    }
    out->resize(env.payload.size() / sizeof(T));
    std::memcpy(out->data(), env.payload.data(), env.payload.size());
    return Status::Ok();
  }

  /// Binomial-tree broadcast of (verdict, data); `seed` lets the root
  /// originate a poison verdict (AllReduceOr).
  template <typename T>
  Status BcastEnvelope(std::vector<T>& data, int root, StatusCode seed);

  RankContext* ctx_;
  std::vector<int> group_;   // communicator index -> world rank
  std::vector<int> world_to_index_;  // world rank -> index (-1: not a member)
  int my_index_;
  int color_epoch_ = 0;      // disambiguates tags across Split generations
  telemetry::Counter* retransmit_counter_;      // mm.net.retransmit_count
  telemetry::Counter* heartbeat_miss_counter_;  // mm.net.heartbeat_miss_count
};

// ---- template implementations ----

template <typename T>
void Communicator::Bcast(std::vector<T>& data, int root) {
  // Binomial tree rooted at `root`. In relative ranks, a nonzero rank
  // receives from its parent (lowest set bit cleared) and then forwards to
  // rel + 2^j for j below its lowest set bit.
  int n = size();
  if (n == 1) return;
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x1B;
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  int start_j;
  if (rel != 0) {
    int low = __builtin_ctz(static_cast<unsigned>(rel));
    int parent_rel = rel & (rel - 1);
    data = Recv<T>((parent_rel + root) % n, kTag);
    start_j = low - 1;
  } else {
    start_j = rounds - 1;
  }
  for (int j = start_j; j >= 0; --j) {
    int child_rel = rel + (1 << j);
    if (child_rel < n) {
      Send<T>((child_rel + root) % n, kTag, data);
    }
  }
}

template <typename T, typename Op>
void Communicator::Reduce(std::vector<T>& data, int root, Op op) {
  int n = size();
  if (n == 1) return;
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x2C;
  // Binomial-tree fan-in: at round k, ranks with bit k set send to rel-2^k.
  for (int k = 0; (1 << k) < n; ++k) {
    if (rel & (1 << k)) {
      Send<T>(((rel ^ (1 << k)) + root) % n, kTag, data);
      return;  // contributed and done
    }
    int peer_rel = rel | (1 << k);
    if (peer_rel < n) {
      auto theirs = Recv<T>((peer_rel + root) % n, kTag);
      MM_CHECK(theirs.size() == data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = op(data[i], theirs[i]);
      }
    }
  }
}

template <typename T, typename Op>
void Communicator::AllReduce(std::vector<T>& data, Op op) {
  Reduce(data, /*root=*/0, op);
  Bcast(data, /*root=*/0);
}

template <typename T>
std::vector<std::vector<T>> Communicator::GatherV(const std::vector<T>& mine,
                                                  int root) {
  int n = size();
  constexpr int kTag = 0x3D;
  std::vector<std::vector<T>> all;
  if (my_index_ == root) {
    all.resize(n);
    all[root] = mine;
    for (int i = 0; i < n - 1; ++i) {
      int src = kAnySource;
      auto payload = Recv<T>(src, kTag, &src);
      // Map the world rank back to its communicator index.
      int idx = world_to_index_[src];
      MM_CHECK(idx >= 0);
      all[idx] = std::move(payload);
    }
  } else {
    Send<T>(root, kTag, mine);
  }
  return all;
}

template <typename T>
std::vector<T> Communicator::AllGatherV(const std::vector<T>& mine) {
  auto parts = GatherV(mine, /*root=*/0);
  std::vector<T> flat;
  if (my_index_ == 0) {
    for (auto& part : parts) {
      flat.insert(flat.end(), part.begin(), part.end());
    }
  }
  Bcast(flat, /*root=*/0);
  return flat;
}

template <typename T>
std::vector<T> Communicator::ScatterV(const std::vector<std::vector<T>>& parts,
                                      int root) {
  constexpr int kTag = 0x4E;
  int n = size();
  if (my_index_ == root) {
    MM_CHECK(static_cast<int>(parts.size()) == n);
    for (int i = 0; i < n; ++i) {
      if (i != root) Send<T>(i, kTag, parts[i]);
    }
    return parts[root];
  }
  return Recv<T>(root, kTag);
}

template <typename T>
Status Communicator::BcastEnvelope(std::vector<T>& data, int root,
                                   StatusCode seed) {
  int n = size();
  if (n == 1) return seed == StatusCode::kOk
                         ? Status::Ok()
                         : PeerDead("collective poisoned at root");
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x5B;
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  Status st = Status::Ok();
  int start_j;
  if (rel != 0) {
    int low = __builtin_ctz(static_cast<unsigned>(rel));
    int parent_rel = rel & (rel - 1);
    auto env = RecvEnvelopeFrom({(parent_rel + root) % n}, kTag);
    if (!env.ok()) {
      st = env.status();  // parent dead: this subtree is poisoned
    } else {
      st = DecodeEnvelope(*env, &data);
    }
    start_j = low - 1;
  } else {
    if (seed != StatusCode::kOk) {
      st = PeerDead("collective poisoned at root");
    }
    start_j = rounds - 1;
  }
  // Forward either the data or the poison — children must never hang.
  for (int j = start_j; j >= 0; --j) {
    int child_rel = rel + (1 << j);
    if (child_rel < n) {
      if (st.ok()) {
        SendEnvelopeVec((child_rel + root) % n, kTag, StatusCode::kOk, data);
      } else {
        SendEnvelope((child_rel + root) % n, kTag, StatusCode::kPeerDead,
                     nullptr, 0);
      }
    }
  }
  if (!st.ok()) data.clear();
  return st;
}

template <typename T, typename Op>
Status Communicator::ReduceOr(std::vector<T>& data, int root, Op op) {
  int n = size();
  if (n == 1) return Status::Ok();
  int rel = (my_index_ - root + n) % n;
  constexpr int kTag = 0x6C;
  Status st = Status::Ok();
  for (int k = 0; (1 << k) < n; ++k) {
    if (rel & (1 << k)) {
      // Contribute upward, tagging the partial aggregate with our verdict
      // so a poisoned subtree is visible at the root.
      SendEnvelopeVec(((rel ^ (1 << k)) + root) % n, kTag, st.code(), data);
      return st;
    }
    int peer_rel = rel | (1 << k);
    if (peer_rel < n) {
      auto env = RecvEnvelopeFrom({(peer_rel + root) % n}, kTag);
      if (!env.ok()) {
        st = env.status();  // peer died: its whole subtree is missing
        continue;
      }
      if (env->code != StatusCode::kOk) {
        st = PeerDead("poisoned subtree contribution");
      }
      std::vector<T> theirs;
      Status decode = DecodeEnvelope(
          Envelope{StatusCode::kOk, std::move(env->payload), env->src_world},
          &theirs);
      if (!decode.ok() || theirs.size() != data.size()) {
        st = !decode.ok() ? decode : PeerDead("partial subtree contribution");
        continue;
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = op(data[i], theirs[i]);
      }
    }
  }
  return st;
}

template <typename T>
Status Communicator::GatherVOr(const std::vector<T>& mine, int root,
                               std::vector<std::vector<T>>* all) {
  int n = size();
  constexpr int kTag = 0x7D;
  if (my_index_ != root) {
    SendEnvelopeVec(root, kTag, StatusCode::kOk, mine);
    return Status::Ok();
  }
  all->assign(static_cast<std::size_t>(n), {});
  (*all)[root] = mine;
  std::vector<int> pending;
  pending.reserve(static_cast<std::size_t>(n) - 1);
  for (int i = 0; i < n; ++i) {
    if (i != root) pending.push_back(i);
  }
  Status st = Status::Ok();
  while (!pending.empty()) {
    auto env = RecvEnvelopeFrom(pending, kTag);
    if (!env.ok()) {
      // Every remaining contributor is dead; their slots stay empty.
      st = env.status();
      break;
    }
    int idx = world_to_index_[env->src_world];
    MM_CHECK(idx >= 0);
    Status decode = DecodeEnvelope(*env, &(*all)[idx]);
    if (!decode.ok()) st = decode;
    pending.erase(std::find(pending.begin(), pending.end(), idx));
  }
  return st;
}

template <typename T>
Status Communicator::ScatterVOr(const std::vector<std::vector<T>>& parts,
                                int root, std::vector<T>* mine) {
  constexpr int kTag = 0x8E;
  int n = size();
  if (my_index_ == root) {
    MM_CHECK(static_cast<int>(parts.size()) == n);
    for (int i = 0; i < n; ++i) {
      if (i != root) SendEnvelopeVec(i, kTag, StatusCode::kOk, parts[i]);
    }
    *mine = parts[root];
    return Status::Ok();
  }
  auto env = RecvEnvelopeFrom({root}, kTag);
  if (!env.ok()) return env.status();
  return DecodeEnvelope(*env, mine);
}

}  // namespace mm::comm
