// Distributed lock (paper §III-A "Supporting Arbitrary Application
// Structures": MegaMmap provides distributed locks and barriers).
//
// The lock is homed on a node; acquisition is modeled as a request/grant
// round trip to the home node, serialized behind the previous holder's
// release. Real-thread mutual exclusion is provided by an actual mutex so
// the protected critical sections are genuinely exclusive.
#pragma once

#include "mm/comm/world.h"
#include "mm/util/mutex.h"

namespace mm::comm {

class DistributedLock {
 public:
  /// Creates a lock homed on `home_node` of the world's cluster.
  DistributedLock(World* world, std::size_t home_node)
      : DistributedLock(&world->cluster(), home_node) {}

  /// Same lock, identified by the cluster alone — for holders that outlive
  /// or predate any World (e.g. the Service-registered named locks that
  /// mm::BTree leases; Service::GetDistributedLock).
  DistributedLock(sim::Cluster* cluster, std::size_t home_node)
      : cluster_(cluster), home_node_(home_node) {}

  /// Blocks until the lock is held; charges the round trip and any wait for
  /// the previous holder to the caller's virtual clock.
  void Acquire(RankContext& ctx) MM_ACQUIRE(mu_);

  /// Releases the lock; charges the release notification.
  void Release(RankContext& ctx) MM_RELEASE(mu_);

  /// RAII guard.
  class Guard {
   public:
    Guard(DistributedLock& lock, RankContext& ctx) : lock_(lock), ctx_(ctx) {
      lock_.Acquire(ctx_);
    }
    ~Guard() { lock_.Release(ctx_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    DistributedLock& lock_;
    RankContext& ctx_;
  };

 private:
  sim::Cluster* cluster_;
  std::size_t home_node_;
  Mutex mu_;
  sim::SimTime last_release_ MM_GUARDED_BY(mu_) = 0.0;
};

}  // namespace mm::comm
