// Job launcher: spawns one thread per simulated rank over a Cluster and
// runs the application body, collecting per-rank virtual completion times.
// This replaces `mpirun -n <p>` in the reproduction (DESIGN.md §2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mm/comm/world.h"
#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"

namespace mm::comm {

/// Outcome of a simulated parallel job.
struct RunResult {
  /// Virtual completion time of the slowest rank (the job's "runtime").
  sim::SimTime max_time = 0.0;
  std::vector<sim::SimTime> rank_times;
  /// True when at least one rank died of simulated OOM (Fig. 6 cliff).
  bool oom = false;
  /// Ranks killed by fault injection (RankKillSpec). An injected death is
  /// the experiment working as intended, not a job error: survivors decide
  /// whether the run succeeds.
  std::vector<int> dead_ranks;
  /// First non-OOM error message, empty on success.
  std::string error;

  bool ok() const { return !oom && error.empty(); }
};

/// Runs `body` on `num_ranks` ranks laid out `ranks_per_node` per node over
/// `cluster`. Blocks until every rank finishes (or dies).
RunResult RunRanks(sim::Cluster& cluster, int num_ranks, int ranks_per_node,
                   const std::function<void(RankContext&)>& body);

/// As above with robustness knobs: `options.kill` arms the rank-death plan
/// and `options.detector` configures the failure detector. Network-level
/// faults (drop/dup/delay/partition) are configured separately on the
/// cluster via Network::ConfigureFaults — typically both come from the same
/// `faults:` YAML block (sim::FaultConfig).
RunResult RunRanks(sim::Cluster& cluster, int num_ranks, int ranks_per_node,
                   WorldOptions options,
                   const std::function<void(RankContext&)>& body);

}  // namespace mm::comm
