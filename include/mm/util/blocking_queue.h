// Unbounded MPMC blocking queue used for MemoryTask submission between the
// MegaMmap library (application ranks) and the runtime's workers.
//
// Concurrency contract (compiler-checked under -Wthread-safety): all state
// is guarded by mu_; Close() is the only shutdown signal and is ordered
// with Push/Pop through mu_ — a Push that loses the race to Close returns
// false without consuming the item, and Pop drains remaining items before
// reporting closure (see test_blocking_queue.cc "CloseRace" TSan tests).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "mm/util/mutex.h"

namespace mm {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item and wakes one waiter. Returns false — without
  /// consuming `item` — when the queue is closed, so the caller can still
  /// fulfill the rejected task's promise.
  bool Push(T&& item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Copying overload for lvalue items.
  bool Push(const T& item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(item);
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only after Close() once the queue has drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed; blocked and future Pop() calls return nullopt
  /// once remaining items drain.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  // mm-verify: leaf-lock(protects only the deque + closed flag, never calls out while held)
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ MM_GUARDED_BY(mu_);
  bool closed_ MM_GUARDED_BY(mu_) = false;
};

}  // namespace mm
