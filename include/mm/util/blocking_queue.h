// Unbounded MPMC blocking queue used for MemoryTask submission between the
// MegaMmap library (application ranks) and the runtime's workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mm {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item and wakes one waiter. Returns false — without
  /// consuming `item` — when the queue is closed, so the caller can still
  /// fulfill the rejected task's promise.
  bool Push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Copying overload for lvalue items.
  bool Push(const T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(item);
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only after Close() once the queue has drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed; blocked and future Pop() calls return nullopt
  /// once remaining items drain.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mm
