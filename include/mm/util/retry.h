// Retry-with-exponential-backoff policy for transient I/O failures.
//
// Device and stager operations in the simulated DMSH can return kIoError
// when the fault injector fires (see mm/sim/fault.h). RetryPolicy wraps
// such operations: each failed attempt is re-issued after a backoff delay
// that is charged to the *virtual* clock, so retries lengthen the simulated
// runtime exactly as they would wall-clock time on real hardware.
//
// Times are virtual seconds (sim::SimTime is an alias for double; plain
// double is used here so util/ stays independent of sim/).
#pragma once

#include <algorithm>
#include <utility>

#include "mm/util/status.h"
#include "mm/util/yaml.h"

namespace mm {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 4;
  /// Virtual-time delay before the first retry.
  double initial_backoff_s = 100e-6;
  /// Backoff growth factor between consecutive retries.
  double backoff_multiplier = 4.0;
  /// Upper bound on a single backoff delay.
  double max_backoff_s = 50e-3;

  /// Only transient I/O errors are worth re-issuing; permanent failures
  /// (kUnavailable) and logical errors fail fast.
  static bool IsRetryable(const Status& s) {
    return s.code() == StatusCode::kIoError;
  }

  /// Backoff charged before retry number `retry` (1-based).
  double BackoffBefore(int retry) const {
    double b = initial_backoff_s;
    for (int i = 1; i < retry; ++i) b *= backoff_multiplier;
    return std::min(b, max_backoff_s);
  }

  /// Parses a `retry:` YAML map; absent keys keep their defaults.
  static StatusOr<RetryPolicy> FromYaml(const yaml::Node& node);
};

namespace detail {
inline const Status& RetryStatusOf(const Status& s) { return s; }
template <typename T>
const Status& RetryStatusOf(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace detail

/// Runs `op(attempt_start, done)` up to policy.max_attempts times. `op`
/// returns Status or StatusOr<T>; the final attempt's result is returned.
/// Between attempts the next attempt's start time advances past the failed
/// attempt's completion plus the backoff delay, so all retry cost lands on
/// the virtual clock. `*done` (if non-null) is merged with the completion
/// time of the last attempt. `attempts_out` (if non-null) receives the
/// number of attempts actually issued.
template <typename Op>
auto RunWithRetry(const RetryPolicy& policy, double now, double* done, Op&& op,
                  int* attempts_out = nullptr)
    -> decltype(op(now, done)) {
  double attempt_start = now;
  int attempt = 1;
  for (;;) {
    double attempt_done = attempt_start;
    auto result = op(attempt_start, &attempt_done);
    const Status& st = detail::RetryStatusOf(result);
    if (st.ok() || !RetryPolicy::IsRetryable(st) ||
        attempt >= policy.max_attempts) {
      if (done) *done = std::max(*done, attempt_done);
      if (attempts_out) *attempts_out = attempt;
      return result;
    }
    attempt_start = attempt_done + policy.BackoffBefore(attempt);
    ++attempt;
  }
}

}  // namespace mm
