// Dynamic bitset with range operations. MegaMmap uses one Bitmap per cached
// page to track which bytes (at a configurable granularity) a transaction
// modified, so evictions and TxEnd ship only dirty fragments (partial paging,
// paper §III-B "Lifecycle of Modified Data").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mm {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  /// Grows (or shrinks) to `bits`, zero-filling new bits.
  void Resize(std::size_t bits);

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Sets bits [begin, end).
  void SetRange(std::size_t begin, std::size_t end);
  /// Clears bits [begin, end).
  void ClearRange(std::size_t begin, std::size_t end);
  /// True iff every bit in [begin, end) is set.
  bool AllSet(std::size_t begin, std::size_t end) const;
  /// True iff no bit in [begin, end) is set.
  bool NoneSet(std::size_t begin, std::size_t end) const;

  /// Number of set bits.
  std::size_t Count() const;
  bool Any() const;

  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// In-place union; both bitmaps must have equal size.
  void Or(const Bitmap& other);

  /// Invokes fn(begin, end) for each maximal run of set bits.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    std::size_t i = 0;
    while (i < bits_) {
      while (i < bits_ && !Test(i)) ++i;
      if (i >= bits_) break;
      std::size_t begin = i;
      while (i < bits_ && Test(i)) ++i;
      fn(begin, i);
    }
  }

  bool operator==(const Bitmap& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mm
