// URL-style vector keys (paper §III-A / §III-B "Persistently Integrating
// Memory with Storage"): "protocol://path:params", e.g.
//   shdf:///data/df.h5:mygroup      -> scheme=shdf, path=/data/df.h5,
//                                      fragment=mygroup
//   posix:///tmp/points.bin         -> scheme=posix, path=/tmp/points.bin
//   spar:///data/pts.parquet        -> scheme=spar (parquet-like columnar)
// A key with no scheme ("/points.parquet") defaults to posix.
#pragma once

#include <string>

#include "mm/util/status.h"

namespace mm {

struct Uri {
  std::string scheme;    // staging backend to use ("posix", "shdf", "spar")
  std::string path;      // backend object path
  std::string fragment;  // optional sub-object (HDF5 group, column set, ...)

  std::string ToString() const;
};

/// Parses a MegaMmap vector key. Never fails for nonempty input: missing
/// scheme defaults to "posix"; missing fragment is empty.
StatusOr<Uri> ParseUri(const std::string& key);

}  // namespace mm
