// Deterministic PRNG (xoshiro256**) used wherever the paper's workloads need
// randomness (RF bagging, DBSCAN subsampling, synthetic datasets). A fixed
// seed yields identical streams across runs and platforms, which the random
// transaction type relies on to predict future accesses.
#pragma once

#include <cstdint>

#include "mm/util/hash.h"

namespace mm {

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into four lanes.
    for (auto& lane : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      lane = MixU64(seed);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bias is negligible for bound << 2^64 (workload sampling, not crypto).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Gaussian via Box–Muller (uses two uniforms per pair, caches one).
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    double u2 = NextDouble();
    double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * __builtin_sin(theta);
    have_cached_ = true;
    return r * __builtin_cos(theta);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace mm
