// Clang thread-safety-analysis attribute macros (the compiler-checked lock
// contracts behind `-Wthread-safety`). Under Clang these expand to the
// `capability`/`guarded_by`/`acquire_capability`/... attributes; under GCC
// and every other compiler they compile away to nothing, so the annotations
// are free documentation there and machine-checked contracts in the
// `thread-safety` CI job.
//
// Usage vocabulary (see DESIGN.md §10 for the repo-wide contracts):
//   - MM_GUARDED_BY(mu)  on a field: reads/writes require holding `mu`.
//   - MM_REQUIRES(mu)    on a function: callers must already hold `mu`.
//   - MM_ACQUIRE / MM_RELEASE on functions that lock/unlock across calls
//     (e.g. DistributedLock::Acquire/Release).
//   - MM_EXCLUDES(mu)    on a function that must NOT be entered with `mu`
//     held (re-entrancy guard).
//   - MM_NO_THREAD_SAFETY_ANALYSIS as a last-resort escape hatch; every use
//     must carry a comment explaining why the analysis cannot see the
//     invariant.
#pragma once

#if defined(__clang__)
#define MM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define MM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability (e.g. mm::Mutex).
#define MM_CAPABILITY(x) MM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define MM_SCOPED_CAPABILITY MM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define MM_GUARDED_BY(x) MM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field: the *pointed-to* data is protected by the capability.
#define MM_PT_GUARDED_BY(x) MM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention). These expand to
/// nothing on EVERY compiler: Clang only checks acquired_before/after under
/// the off-by-default -Wthread-safety-beta, and cross-class member
/// references in the attribute arguments are brittle across toolchains.
/// The contract of record is the source text — `ci/mm_verify.py` (MML101)
/// parses these annotations, compares them against every nested acquisition
/// observed in the whole program, and rejects undeclared pairs and cycles.
#define MM_ACQUIRED_BEFORE(...)  // enforced by ci/mm_verify.py (MML101)
#define MM_ACQUIRED_AFTER(...)   // enforced by ci/mm_verify.py (MML101)

/// Function requires the capability to be held on entry (and keeps it held).
#define MM_REQUIRES(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define MM_REQUIRES_SHARED(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define MM_ACQUIRE(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define MM_ACQUIRE_SHARED(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define MM_RELEASE(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define MM_RELEASE_SHARED(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define MM_TRY_ACQUIRE(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must not be entered while holding the capability.
#define MM_EXCLUDES(...) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis).
#define MM_ASSERT_CAPABILITY(x) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the given capability.
#define MM_RETURN_CAPABILITY(x) \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must be
/// justified with a comment.
#define MM_NO_THREAD_SAFETY_ANALYSIS \
  MM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
