// Byte-size helpers: constants, "48g"/"1.5t"-style parsing, and formatting.
#pragma once

#include <cstdint>
#include <string>

#include "mm/util/status.h"

namespace mm {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

constexpr std::uint64_t KIBIBYTES(std::uint64_t n) { return n * kKiB; }
constexpr std::uint64_t MEGABYTES(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t GIGABYTES(std::uint64_t n) { return n * kGiB; }
constexpr std::uint64_t TERABYTES(std::uint64_t n) { return n * kTiB; }

/// Parses sizes like "4096", "16k", "1.5m", "48g", "2t" (case-insensitive,
/// optional trailing 'b' / "ib"). Fractional values are rounded down.
StatusOr<std::uint64_t> ParseBytes(const std::string& text);

/// Formats a byte count with a binary-unit suffix, e.g. "1.50GiB".
std::string FormatBytes(std::uint64_t bytes);

}  // namespace mm
