// Mini-YAML parser covering the subset MegaMmap configs use (paper §III-A:
// "the MegaMmap configuration YAML file"): nested maps by 2-space
// indentation, block lists ("- item"), scalars, '#' comments, and inline
// flow lists ("[a, b, c]"). Anchors, multi-line strings, and flow maps are
// out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mm/util/status.h"

namespace mm::yaml {

enum class NodeKind { kNull, kScalar, kMap, kList };

/// A parsed YAML node. Maps preserve insertion order for reproducible dumps.
class Node {
 public:
  Node() : kind_(NodeKind::kNull) {}
  static Node Scalar(std::string value);
  static Node Map();
  static Node List();

  NodeKind kind() const { return kind_; }
  bool IsNull() const { return kind_ == NodeKind::kNull; }
  bool IsScalar() const { return kind_ == NodeKind::kScalar; }
  bool IsMap() const { return kind_ == NodeKind::kMap; }
  bool IsList() const { return kind_ == NodeKind::kList; }

  // --- scalar accessors (valid only for kScalar) ---
  const std::string& AsString() const;
  StatusOr<std::int64_t> AsInt() const;
  StatusOr<double> AsDouble() const;
  StatusOr<bool> AsBool() const;
  /// Byte-size scalar such as "48g" (see ParseBytes).
  StatusOr<std::uint64_t> AsBytes() const;

  // --- map accessors ---
  bool Has(const std::string& key) const;
  /// Returns the child node or a shared null node when absent.
  const Node& operator[](const std::string& key) const;
  Node& GetOrCreate(const std::string& key);
  void Put(const std::string& key, Node value);
  const std::vector<std::string>& Keys() const { return keys_; }

  // --- list accessors ---
  std::size_t size() const { return items_.size(); }
  const Node& at(std::size_t i) const;
  void Append(Node value);
  const std::vector<Node>& Items() const { return items_; }

  // --- typed convenience getters with defaults ---
  std::string GetString(const std::string& key, const std::string& dflt) const;
  std::int64_t GetInt(const std::string& key, std::int64_t dflt) const;
  double GetDouble(const std::string& key, double dflt) const;
  bool GetBool(const std::string& key, bool dflt) const;
  std::uint64_t GetBytes(const std::string& key, std::uint64_t dflt) const;

  /// Serializes back to YAML text (canonical 2-space indentation).
  std::string Dump(int indent = 0) const;

 private:
  NodeKind kind_;
  std::string scalar_;
  std::vector<std::string> keys_;
  std::map<std::string, Node> map_;
  std::vector<Node> items_;
};

/// Parses a YAML document. Returns the root node (a map, list, or scalar).
StatusOr<Node> Parse(const std::string& text);

/// Parses the file at `path`.
StatusOr<Node> ParseFile(const std::string& path);

}  // namespace mm::yaml
