// Annotated mutex vocabulary: mm::Mutex / mm::MutexLock / mm::CondVar wrap
// the std primitives with Clang thread-safety capabilities so lock
// contracts (which fields a mutex guards, which functions require it) are
// compiler-checked under `-Wthread-safety` (thread_annotations.h).
//
// All MegaMmap code outside util/ must use these wrappers instead of raw
// std::mutex/std::lock_guard/std::unique_lock/std::condition_variable —
// enforced by ci/mm_lint.py rule MML001 — because the raw types carry no
// capability attributes and silently opt out of the analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#include "mm/util/thread_annotations.h"

namespace mm {

class CondVar;
class MutexLock;

/// An annotated exclusive lock. Identical runtime behavior to std::mutex;
/// the capability attribute lets Clang verify every MM_GUARDED_BY /
/// MM_REQUIRES contract written against it.
class MM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MM_ACQUIRE() { mu_.lock(); }
  void Unlock() MM_RELEASE() { mu_.unlock(); }
  bool TryLock() MM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scope lock over mm::Mutex (the std::lock_guard/std::unique_lock
/// replacement). Supports early release (Unlock) for the
/// collect-under-lock, notify-outside-lock pattern, and condition waits
/// through mm::CondVar.
class MM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope exit (destruction is then a no-op).
  void Unlock() MM_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with mm::Mutex via MutexLock. Waits take the
/// scoped lock by reference, so holding the mutex is enforced by
/// construction; use explicit `while (!pred) cv.Wait(lock);` loops rather
/// than predicate lambdas (the analysis cannot see captures inside a
/// lambda body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock and blocks; re-acquires before return.
  /// Spurious wakeups are possible: always re-check the predicate.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mm
