// Minimal leveled logger. Thread-safe, writes to stderr. The level is taken
// from the MM_LOG_LEVEL environment variable (trace|debug|info|warn|error;
// default warn) so tests and benches stay quiet unless asked.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "mm/util/mutex.h"

namespace mm {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global logger singleton.
class Logger {
 public:
  static Logger& Get();

  // The level is a lock-free atomic: Enabled() sits on every log-statement
  // fast path and set_level may race with logging threads in tests.
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Writes one formatted line ("[LEVEL] module: message").
  void Write(LogLevel level, const std::string& module,
             const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_;
  Mutex mu_;  // serializes Write so lines never interleave on stderr
};

/// Parses a level name; defaults to kWarn on unknown input.
LogLevel ParseLogLevel(const std::string& name);

// ---- per-thread log context ------------------------------------------------
// Rank and worker threads install a context so their log lines carry the
// virtual-clock timestamp and node rank: "[t=12.345s n3 WARN] module: ...".
// Threads without a context keep the bare "[WARN] module: ..." format.
// The clock callback runs on the owning thread only (VirtualClock is
// thread-confined), which is exactly where its log statements execute.

/// Installs a context for the calling thread. `sim_now` may be empty
/// (node prefix only); `node` < 0 omits the node prefix.
void SetThreadLogContext(std::function<double()> sim_now, int node);
void ClearThreadLogContext();

/// RAII variant: installs on construction, clears on destruction.
class ScopedLogContext {
 public:
  ScopedLogContext(std::function<double()> sim_now, int node) {
    SetThreadLogContext(std::move(sim_now), node);
  }
  ~ScopedLogContext() { ClearThreadLogContext(); }
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;
};

namespace detail {
/// Stream-style log statement builder: destructor emits the line. The
/// level check is latched once in the constructor — the previous design
/// re-queried Logger::Get().Enabled() on every operator<< (an atomic load
/// per streamed value) and once more in the destructor.
class LogLine {
 public:
  LogLine(LogLevel level, const char* module)
      : enabled_(Logger::Get().Enabled(level)),
        level_(level),
        module_(module) {}
  ~LogLine() {
    if (enabled_) {
      Logger::Get().Write(level_, module_, oss_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) oss_ << v;
    return *this;
  }

 private:
  const bool enabled_;
  LogLevel level_;
  const char* module_;
  std::ostringstream oss_;
};
}  // namespace detail

#define MM_LOG(level, module) ::mm::detail::LogLine(level, module)
#define MM_TRACE(module) MM_LOG(::mm::LogLevel::kTrace, module)
#define MM_DEBUG(module) MM_LOG(::mm::LogLevel::kDebug, module)
#define MM_INFO(module) MM_LOG(::mm::LogLevel::kInfo, module)
#define MM_WARN(module) MM_LOG(::mm::LogLevel::kWarn, module)
#define MM_ERROR(module) MM_LOG(::mm::LogLevel::kError, module)

}  // namespace mm
