// Minimal leveled logger. Thread-safe, writes to stderr. The level is taken
// from the MM_LOG_LEVEL environment variable (trace|debug|info|warn|error;
// default warn) so tests and benches stay quiet unless asked.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "mm/util/mutex.h"

namespace mm {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global logger singleton.
class Logger {
 public:
  static Logger& Get();

  // The level is a lock-free atomic: Enabled() sits on every log-statement
  // fast path and set_level may race with logging threads in tests.
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Writes one formatted line ("[LEVEL] module: message").
  void Write(LogLevel level, const std::string& module,
             const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_;
  Mutex mu_;  // serializes Write so lines never interleave on stderr
};

/// Parses a level name; defaults to kWarn on unknown input.
LogLevel ParseLogLevel(const std::string& name);

namespace detail {
/// Stream-style log statement builder: destructor emits the line.
class LogLine {
 public:
  LogLine(LogLevel level, const char* module) : level_(level), module_(module) {}
  ~LogLine() {
    if (Logger::Get().Enabled(level_)) {
      Logger::Get().Write(level_, module_, oss_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Logger::Get().Enabled(level_)) oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* module_;
  std::ostringstream oss_;
};
}  // namespace detail

#define MM_LOG(level, module) ::mm::detail::LogLine(level, module)
#define MM_TRACE(module) MM_LOG(::mm::LogLevel::kTrace, module)
#define MM_DEBUG(module) MM_LOG(::mm::LogLevel::kDebug, module)
#define MM_INFO(module) MM_LOG(::mm::LogLevel::kInfo, module)
#define MM_WARN(module) MM_LOG(::mm::LogLevel::kWarn, module)
#define MM_ERROR(module) MM_LOG(::mm::LogLevel::kError, module)

}  // namespace mm
