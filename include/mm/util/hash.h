// Hashing helpers: FNV-1a over bytes/strings and a hash combiner. Used for
// page→worker scheduling, blob→home-node placement, and metadata sharding,
// so the functions here must be deterministic across runs and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace mm {

/// 64-bit FNV-1a over a byte range.
constexpr std::uint64_t Fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t Fnv1a64(std::string_view sv) {
  return Fnv1a64(sv.data(), sv.size());
}

/// Mixes an integer (splitmix64 finalizer) — good avalanche for hashing ids.
constexpr std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// boost-style hash combine.
constexpr std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (MixU64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the per-page integrity
/// checksum for blob contents: cheap, deterministic, and sensitive to the
/// bit-flip corruption the fault injector models.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

inline std::uint32_t Crc32(const std::vector<std::uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace mm
