// Lightweight error-handling vocabulary used across all MegaMmap modules.
//
// Status and StatusOr<T> follow the usual value-or-error idiom: functions
// that can fail return Status (or StatusOr<T> when they also produce a
// value) instead of throwing. Exceptions are reserved for programming
// errors (contract violations), surfaced via MM_CHECK.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace mm {

/// Canonical error codes. Kept deliberately small; the message string
/// carries the detail.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kUnavailable,  // target (tier/node) permanently failed; not retryable
  kDataLoss,     // unrecoverable data corruption/loss detected
  kPeerDead,     // peer rank declared dead by the failure detector
};

/// Human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error result with an optional message. [[nodiscard]]: a
/// dropped Status is a swallowed failure, so every discarded result must be
/// an explicit, commented `(void)` cast (mm_lint rule MML005).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status PeerDead(std::string msg) {
  return Status(StatusCode::kPeerDead, std::move(msg));
}

/// Value-or-Status. Accessing value() on an error aborts via exception,
/// so callers must check ok() (or use MM_ASSIGN_OR_RETURN).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Internal("StatusOr constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    RequireOk();
    return *value_;
  }
  const T& value() const& {
    RequireOk();
    return *value_;
  }
  T&& value() && {
    RequireOk();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void RequireOk() const {
    if (!ok()) {
      throw std::logic_error("StatusOr::value() on error: " +
                             status_.ToString());
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);
}  // namespace detail

/// Contract check: aborts (throws std::logic_error) with location info when
/// the condition does not hold. Active in all build types.
#define MM_CHECK(cond)                                            \
  do {                                                            \
    if (!(cond)) {                                                \
      ::mm::detail::CheckFailed(#cond, __FILE__, __LINE__, "");   \
    }                                                             \
  } while (0)

#define MM_CHECK_MSG(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::mm::detail::CheckFailed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                \
  } while (0)

/// Propagates an error Status from the current function.
#define MM_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::mm::Status _mm_st = (expr);             \
    if (!_mm_st.ok()) return _mm_st;          \
  } while (0)

/// Unwraps a StatusOr into `lhs`, returning the error on failure.
#define MM_ASSIGN_OR_RETURN(lhs, expr)              \
  auto MM_CONCAT_(_mm_sor_, __LINE__) = (expr);     \
  if (!MM_CONCAT_(_mm_sor_, __LINE__).ok())         \
    return MM_CONCAT_(_mm_sor_, __LINE__).status(); \
  lhs = std::move(MM_CONCAT_(_mm_sor_, __LINE__)).value()

#define MM_CONCAT_INNER_(a, b) a##b
#define MM_CONCAT_(a, b) MM_CONCAT_INNER_(a, b)

}  // namespace mm
