// Streaming statistics accumulators used by the benchmark harness to report
// mean / stddev / min / max / percentiles across repeated runs, mirroring the
// paper's "run each experiment 3 times and report the average".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mm {

/// Accumulates samples; cheap summary statistics on demand.
class StatAccumulator {
 public:
  void Add(double x);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double Stddev() const;
  double Min() const;
  double Max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;

  void Clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Simple fixed-width table printer for bench output (paper-style rows).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with aligned columns; `csv` emits comma-separated rows instead.
  std::string Render(bool csv = false) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string FormatDouble(double v, int precision = 2);

}  // namespace mm
