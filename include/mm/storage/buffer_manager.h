// BufferManager: one node's slice of the shared cache (scache). Owns a
// TierStore per granted tier and implements score-driven placement:
// incoming blobs go to the fastest tier with room; lower-scoring resident
// blobs are demoted down the hierarchy to make room for higher-scoring ones
// (paper §III-D "Data Organization": "Pages with lower scores in a tier
// will be prioritized for eviction to make space for higher-scoring data").
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mm/sim/cluster.h"
#include "mm/storage/tier_store.h"

namespace mm::storage {

/// Capacity granted to the program on one tier (Fig. 7 sweeps these).
struct TierGrant {
  sim::TierKind kind;
  std::uint64_t capacity;
};

class BufferManager {
 public:
  /// `node` must outlive the manager; every grant's tier must exist on it.
  BufferManager(sim::Node* node, const std::vector<TierGrant>& grants);

  std::size_t num_tiers() const { return tiers_.size(); }
  TierStore& tier(std::size_t i) { return *tiers_[i]; }
  const TierStore& tier(std::size_t i) const { return *tiers_[i]; }

  /// Total bytes across all tiers.
  std::uint64_t used() const;
  std::uint64_t capacity() const;

  /// Places a blob with an importance score. Tries tiers fastest-first; if
  /// a tier is full, demotes its lowest-scoring blobs below the incoming
  /// score to the next tier down (cascading). Returns the tier index used.
  /// Fails with kResourceExhausted when nothing fits anywhere.
  StatusOr<std::size_t> PutScored(const BlobId& id,
                                  std::vector<std::uint8_t> data, float score,
                                  sim::SimTime now, sim::SimTime* done);

  /// Updates bytes [offset, ...) of a resident blob in place.
  Status PutPartial(const BlobId& id, std::uint64_t offset,
                    const std::vector<std::uint8_t>& data, sim::SimTime now,
                    sim::SimTime* done);

  /// Reads a whole blob from whichever tier holds it.
  StatusOr<std::vector<std::uint8_t>> Get(const BlobId& id, sim::SimTime now,
                                          sim::SimTime* done);

  /// Reads a fragment of a blob.
  StatusOr<std::vector<std::uint8_t>> GetPartial(const BlobId& id,
                                                 std::uint64_t offset,
                                                 std::uint64_t size,
                                                 sim::SimTime now,
                                                 sim::SimTime* done);

  /// Tier index currently holding `id`, or nullopt.
  std::optional<std::size_t> FindBlob(const BlobId& id) const;

  Status Erase(const BlobId& id);

  /// Re-scores a resident blob (organizer input).
  void SetScore(const BlobId& id, float score);
  float GetScore(const BlobId& id) const;

  /// Organizer sweep: promotes the highest-scoring blobs upward while
  /// faster tiers have room, and demotes low-scoring blobs out of
  /// pressured tiers. Returns the number of blobs moved.
  int Rebalance(sim::SimTime now, sim::SimTime* done);

  /// Idle-device estimate of reading `bytes` from the tier holding `id`
  /// (prefetcher input, Algorithm 1 line 21). Falls back to the slowest
  /// tier when the blob is absent.
  double EstimateReadSeconds(const BlobId& id, std::uint64_t bytes) const;

 private:
  /// Moves one blob from tier `from` to tier `to` (charges both devices).
  Status Move(const BlobId& id, std::size_t from, std::size_t to,
              sim::SimTime now, sim::SimTime* done);

  /// Tries to free `needed` bytes in tier `t` by demoting blobs scoring
  /// below `incoming_score` to lower tiers (ties also move when
  /// `allow_ties`, used for cascaded demotions so equal-score data flows
  /// downward instead of wedging the hierarchy). Returns true on success.
  bool MakeRoom(std::size_t t, std::uint64_t needed, float incoming_score,
                bool allow_ties, sim::SimTime now, sim::SimTime* done);

  std::vector<std::unique_ptr<TierStore>> tiers_;
  mutable std::mutex mu_;  // guards scores_ and placement orchestration
  std::unordered_map<BlobId, float, BlobIdHash> scores_;
};

}  // namespace mm::storage
