// BufferManager: one node's slice of the shared cache (scache). Owns a
// TierStore per granted tier and implements score-driven placement:
// incoming blobs go to the fastest tier with room; lower-scoring resident
// blobs are demoted down the hierarchy to make room for higher-scoring ones
// (paper §III-D "Data Organization": "Pages with lower scores in a tier
// will be prioritized for eviction to make space for higher-scoring data").
//
// Fault handling: tier ops are retried per the RetryPolicy (transient
// kIoError), with backoff charged to the virtual clock. A permanent tier
// failure (kUnavailable) marks the tier dead: its contents are drained,
// placement re-routes to surviving tiers, and the registered tier-failure
// handler (the Service) is told which blobs were lost so clean pages can
// be re-staged from the PFS backend and dirty pages flagged as data loss.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"
#include "mm/storage/tier_store.h"
#include "mm/telemetry/sink.h"
#include "mm/util/mutex.h"
#include "mm/util/retry.h"

namespace mm::storage {

/// Capacity granted to the program on one tier (Fig. 7 sweeps these).
struct TierGrant {
  sim::TierKind kind;
  std::uint64_t capacity;
};

class BufferManager {
 public:
  /// Invoked (outside the manager's lock) after a tier permanently fails,
  /// with the blob ids that were resident — and are now lost — on it.
  using TierFailureHandler = std::function<void(
      sim::TierKind kind, const std::vector<BlobId>& lost, sim::SimTime now)>;

  /// `node` must outlive the manager; every grant's tier must exist on it.
  /// `injector` (optional, not owned) feeds faults into the tier stores.
  /// `sink` receives placement metrics and is forwarded to the tier stores.
  BufferManager(sim::Node* node, const std::vector<TierGrant>& grants,
                sim::FaultInjector* injector = nullptr, RetryPolicy retry = {},
                telemetry::NodeSink sink = telemetry::NodeSink::Dummy());

  std::size_t num_tiers() const { return tiers_.size(); }
  TierStore& tier(std::size_t i) { return *tiers_[i]; }
  const TierStore& tier(std::size_t i) const { return *tiers_[i]; }

  /// Tiers that have not permanently failed.
  std::size_t num_live_tiers() const;

  /// Registers the permanent-failure callback (typically Service recovery).
  void SetTierFailureHandler(TierFailureHandler handler);

  /// Total bytes across all tiers.
  std::uint64_t used() const;
  std::uint64_t capacity() const;

  /// Places a blob with an importance score. Tries live tiers fastest-first;
  /// if a tier is full, demotes its lowest-scoring blobs below the incoming
  /// score to the next tier down (cascading). Returns the tier index used.
  /// Fails with kResourceExhausted when nothing fits anywhere, or
  /// kUnavailable when every tier has permanently failed.
  StatusOr<std::size_t> PutScored(const BlobId& id,
                                  std::vector<std::uint8_t> data, float score,
                                  sim::SimTime now, sim::SimTime* done);

  /// Updates bytes [offset, ...) of a resident blob in place.
  Status PutPartial(const BlobId& id, std::uint64_t offset,
                    const std::vector<std::uint8_t>& data, sim::SimTime now,
                    sim::SimTime* done);

  /// Reads a whole blob from whichever tier holds it.
  StatusOr<std::vector<std::uint8_t>> Get(const BlobId& id, sim::SimTime now,
                                          sim::SimTime* done);

  /// Reads a whole blob into a caller-provided buffer, reusing its
  /// capacity (zero-copy task path: workers pass pooled page buffers).
  Status GetInto(const BlobId& id, std::vector<std::uint8_t>* out,
                 sim::SimTime now, sim::SimTime* done);

  /// Reads a fragment of a blob.
  StatusOr<std::vector<std::uint8_t>> GetPartial(const BlobId& id,
                                                 std::uint64_t offset,
                                                 std::uint64_t size,
                                                 sim::SimTime now,
                                                 sim::SimTime* done);

  /// Tier index currently holding `id`, or nullopt.
  std::optional<std::size_t> FindBlob(const BlobId& id) const;

  Status Erase(const BlobId& id);

  /// CRC-32 of a resident blob (integrity metadata; no device charge).
  StatusOr<std::uint32_t> Checksum(const BlobId& id) const;

  /// Re-scores a resident blob (organizer input).
  void SetScore(const BlobId& id, float score);
  float GetScore(const BlobId& id) const;

  /// Organizer sweep: promotes the highest-scoring blobs upward while
  /// faster tiers have room, and demotes low-scoring blobs out of
  /// pressured tiers. Returns the number of blobs moved.
  int Rebalance(sim::SimTime now, sim::SimTime* done);

  /// Idle-device estimate of reading `bytes` from the tier holding `id`
  /// (prefetcher input, Algorithm 1 line 21). Falls back to the slowest
  /// live tier when the blob is absent.
  double EstimateReadSeconds(const BlobId& id, std::uint64_t bytes) const;

 private:
  struct PendingFailure {
    sim::TierKind kind;
    std::vector<BlobId> lost;
  };

  // Lock-holding bodies of the public entry points. Split out (instead of
  // immediately-invoked lambdas) so the thread-safety analysis can check
  // them: a lambda body is a separate, unannotated function to Clang.
  StatusOr<std::size_t> PutScoredLocked(const BlobId& id,
                                        std::vector<std::uint8_t> data,
                                        float score, sim::SimTime now,
                                        sim::SimTime* done) MM_REQUIRES(mu_);
  Status PutPartialLocked(const BlobId& id, std::uint64_t offset,
                          const std::vector<std::uint8_t>& data,
                          sim::SimTime now, sim::SimTime* done)
      MM_REQUIRES(mu_);
  StatusOr<std::vector<std::uint8_t>> GetLocked(const BlobId& id,
                                                sim::SimTime now,
                                                sim::SimTime* done)
      MM_REQUIRES(mu_);
  Status GetIntoLocked(const BlobId& id, std::vector<std::uint8_t>* out,
                       sim::SimTime now, sim::SimTime* done) MM_REQUIRES(mu_);
  StatusOr<std::vector<std::uint8_t>> GetPartialLocked(const BlobId& id,
                                                       std::uint64_t offset,
                                                       std::uint64_t size,
                                                       sim::SimTime now,
                                                       sim::SimTime* done)
      MM_REQUIRES(mu_);

  /// Moves one blob from tier `from` to tier `to` (charges both devices).
  /// Holds mu_ for the whole placement decision it is part of.
  Status Move(const BlobId& id, std::size_t from, std::size_t to,
              sim::SimTime now, sim::SimTime* done) MM_REQUIRES(mu_);

  /// Tries to free `needed` bytes in tier `t` by demoting blobs scoring
  /// below `incoming_score` to lower tiers (ties also move when
  /// `allow_ties`, used for cascaded demotions so equal-score data flows
  /// downward instead of wedging the hierarchy). Returns true on success.
  bool MakeRoom(std::size_t t, std::uint64_t needed, float incoming_score,
                bool allow_ties, sim::SimTime now, sim::SimTime* done)
      MM_REQUIRES(mu_);

  /// Drains any tier that failed but has not been drained yet. Collected
  /// failures are reported via NotifyFailures after unlock.
  std::vector<PendingFailure> CollectFailuresLocked() MM_REQUIRES(mu_);
  /// Invokes the failure handler outside mu_ (the handler re-enters the
  /// manager through Service recovery).
  void NotifyFailures(std::vector<PendingFailure> failures, sim::SimTime now)
      MM_EXCLUDES(mu_);

  std::vector<std::unique_ptr<TierStore>> tiers_;
  RetryPolicy retry_;
  telemetry::Counter* demotions_;   // mm.tier.demotion_count
  telemetry::Counter* promotions_;  // mm.tier.promotion_count
  // Guards scores_ and placement orchestration. Lock order (MML101): the
  // placement paths call into TierStore (Contains/Erase/FindBlob/Checksum)
  // while holding mu_, and each TierStore locks its own mutex.
  mutable Mutex mu_ MM_ACQUIRED_BEFORE(TierStore::mu_);
  std::unordered_map<BlobId, float, BlobIdHash> scores_ MM_GUARDED_BY(mu_);
  std::vector<bool> tier_drained_ MM_GUARDED_BY(mu_);
  TierFailureHandler failure_handler_ MM_GUARDED_BY(mu_);
};

}  // namespace mm::storage
