// TierStore: the byte storage of one tier on one node. Enforces the
// capacity granted to the program on that device and charges simulated
// device time for every access. Contents are held in memory (the devices
// are simulated; see DESIGN.md §2) while all timing flows through the
// Device queueing model.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mm/sim/device.h"
#include "mm/storage/blob.h"
#include "mm/util/status.h"

namespace mm::storage {

class TierStore {
 public:
  /// `device` outlives the store. `capacity` is the slice of the device
  /// granted to this program (Fig. 7 varies exactly this).
  TierStore(sim::Device* device, std::uint64_t capacity)
      : device_(device), capacity_(capacity) {}

  sim::TierKind kind() const { return device_->kind(); }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  sim::Device& device() { return *device_; }
  const sim::Device& device() const { return *device_; }

  /// Writes a whole blob. Fails with kResourceExhausted when it does not
  /// fit; the caller (BufferManager) must evict/demote first. On success
  /// sets `*done` to the simulated completion time.
  Status Put(const BlobId& id, std::vector<std::uint8_t> data,
             sim::SimTime now, sim::SimTime* done);

  /// Overwrites bytes [offset, offset+data.size()) of an existing blob.
  Status PutPartial(const BlobId& id, std::uint64_t offset,
                    const std::vector<std::uint8_t>& data, sim::SimTime now,
                    sim::SimTime* done);

  /// Reads a whole blob.
  StatusOr<std::vector<std::uint8_t>> Get(const BlobId& id, sim::SimTime now,
                                          sim::SimTime* done) const;

  /// Reads bytes [offset, offset+size).
  StatusOr<std::vector<std::uint8_t>> GetPartial(const BlobId& id,
                                                 std::uint64_t offset,
                                                 std::uint64_t size,
                                                 sim::SimTime now,
                                                 sim::SimTime* done) const;

  /// Removes a blob (no device charge: drop is a metadata operation).
  Status Erase(const BlobId& id);

  bool Contains(const BlobId& id) const;
  std::uint64_t BlobSize(const BlobId& id) const;
  std::uint64_t free_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_ - used_;
  }
  std::size_t num_blobs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blobs_.size();
  }

  /// Lists blob ids currently stored (snapshot).
  std::vector<BlobId> ListBlobs() const;

 private:
  sim::Device* device_;
  std::uint64_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t used_ = 0;
  std::unordered_map<BlobId, std::vector<std::uint8_t>, BlobIdHash> blobs_;
};

}  // namespace mm::storage
