// TierStore: the byte storage of one tier on one node. Enforces the
// capacity granted to the program on that device and charges simulated
// device time for every access. Contents are held in memory (the devices
// are simulated; see DESIGN.md §2) while all timing flows through the
// Device queueing model.
//
// Fault model: when constructed with a FaultInjector, every access first
// consults it. Transient faults charge the op's setup latency and return
// kIoError (the caller's RetryPolicy re-issues); permanent faults flip the
// store into the failed state, after which every access returns
// kUnavailable until the BufferManager drains the tier (FailAndDrain) and
// re-routes its pages.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mm/sim/device.h"
#include "mm/sim/fault.h"
#include "mm/storage/blob.h"
#include "mm/telemetry/sink.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::storage {

class TierStore {
 public:
  /// `device` outlives the store. `capacity` is the slice of the device
  /// granted to this program (Fig. 7 varies exactly this). `injector` is
  /// optional and not owned; when null the store never faults. `sink`
  /// receives per-tier byte counters and "tier" trace spans.
  TierStore(sim::Device* device, std::uint64_t capacity,
            sim::FaultInjector* injector = nullptr,
            telemetry::NodeSink sink = telemetry::NodeSink::Dummy());

  sim::TierKind kind() const { return device_->kind(); }
  /// Granted capacity; 0 once the tier has failed so placement skips it.
  std::uint64_t capacity() const { return failed() ? 0 : capacity_; }
  std::uint64_t used() const {
    MutexLock lock(mu_);
    return used_;
  }
  sim::Device& device() { return *device_; }
  const sim::Device& device() const { return *device_; }

  /// Writes a whole blob. Fails with kResourceExhausted when it does not
  /// fit; the caller (BufferManager) must evict/demote first. On success
  /// sets `*done` to the simulated completion time. `data` is consumed
  /// only on success, so the caller keeps the bytes for a retry or for
  /// placement on another tier.
  Status Put(const BlobId& id, std::vector<std::uint8_t>&& data,
             sim::SimTime now, sim::SimTime* done);

  /// Overwrites bytes [offset, offset+data.size()) of an existing blob.
  Status PutPartial(const BlobId& id, std::uint64_t offset,
                    const std::vector<std::uint8_t>& data, sim::SimTime now,
                    sim::SimTime* done);

  /// Reads a whole blob.
  StatusOr<std::vector<std::uint8_t>> Get(const BlobId& id, sim::SimTime now,
                                          sim::SimTime* done) const;

  /// Reads a whole blob into a caller-provided buffer, reusing its
  /// capacity (zero-copy task path: workers pass pooled page buffers).
  Status GetInto(const BlobId& id, std::vector<std::uint8_t>* out,
                 sim::SimTime now, sim::SimTime* done) const;

  /// Reads bytes [offset, offset+size).
  StatusOr<std::vector<std::uint8_t>> GetPartial(const BlobId& id,
                                                 std::uint64_t offset,
                                                 std::uint64_t size,
                                                 sim::SimTime now,
                                                 sim::SimTime* done) const;

  /// Removes a blob (no device charge: drop is a metadata operation).
  Status Erase(const BlobId& id);

  bool Contains(const BlobId& id) const;
  std::uint64_t BlobSize(const BlobId& id) const;
  std::uint64_t free_bytes() const {
    if (failed()) return 0;
    MutexLock lock(mu_);
    return capacity_ - used_;
  }
  std::size_t num_blobs() const {
    MutexLock lock(mu_);
    return blobs_.size();
  }

  /// Lists blob ids currently stored (snapshot).
  std::vector<BlobId> ListBlobs() const;

  // --- fault handling ---

  /// True once the tier has permanently failed.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Marks the tier permanently failed and drops all contents, returning
  /// the ids that were lost. Idempotent: a second call returns empty.
  /// No device time is charged — the device is gone, not busy.
  std::vector<BlobId> FailAndDrain();

  /// CRC-32 of a resident blob's bytes. Integrity metadata, no device
  /// charge and no fault draw.
  StatusOr<std::uint32_t> Checksum(const BlobId& id) const;

  /// Flips one byte of a resident blob in place — silent media corruption
  /// for tests/fault drills. Bypasses the device model and the injector.
  Status CorruptBlob(const BlobId& id, std::uint64_t offset);

 private:
  /// Consults the injector before a device op. Returns non-OK when the op
  /// must fail (charging failed-attempt latency for transient faults);
  /// otherwise stores the latency-spike multiplier in `*time_factor`.
  Status InjectFault(bool is_write, sim::SimTime now, sim::SimTime* done,
                     double* time_factor) const;

  /// Records the byte counter and a "tier" span for one completed device op.
  void Record(bool is_write, std::uint64_t bytes, sim::SimTime now,
              sim::SimTime done) const;

  sim::Device* device_;
  std::uint64_t capacity_;
  sim::FaultInjector* injector_;
  telemetry::NodeSink sink_;
  telemetry::Counter* read_bytes_;   // mm.tier.<kind>_read_bytes
  telemetry::Counter* write_bytes_;  // mm.tier.<kind>_write_bytes
  mutable std::atomic<bool> failed_{false};
  mutable Mutex mu_;
  std::uint64_t used_ MM_GUARDED_BY(mu_) = 0;
  std::unordered_map<BlobId, std::vector<std::uint8_t>, BlobIdHash> blobs_
      MM_GUARDED_BY(mu_);
};

}  // namespace mm::storage
