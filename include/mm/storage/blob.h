// Blob identity and descriptors. A blob is one page of one MegaMmap vector
// as stored in the shared cache (scache). Blob ids are deterministic
// functions of the vector key and page index so every node computes the same
// home node without communication.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mm/sim/device.h"
#include "mm/util/hash.h"

namespace mm::storage {

struct BlobId {
  std::uint64_t vector_id = 0;  // Fnv1a64 of the vector key
  std::uint64_t page_idx = 0;

  bool operator==(const BlobId&) const = default;

  /// Stable 64-bit digest used for home-node and worker hashing.
  std::uint64_t Digest() const {
    return HashCombine(MixU64(vector_id), page_idx);
  }

  std::string ToString() const {
    return std::to_string(vector_id) + "/" + std::to_string(page_idx);
  }
};

struct BlobIdHash {
  std::size_t operator()(const BlobId& id) const {
    return static_cast<std::size_t>(id.Digest());
  }
};

/// Where a blob currently lives and how it is scored.
struct BlobLocation {
  std::size_t node = 0;
  sim::TierKind tier = sim::TierKind::kDram;
  std::uint64_t size = 0;
  /// Prefetcher importance score in [0, 1] (paper §III-D). Higher scores
  /// are kept in faster tiers.
  float score = 0.0f;
  /// Node that most recently set the score (locality hint).
  std::size_t score_node = 0;
  /// True when the blob has modifications not yet staged to the backend.
  bool dirty = false;
  /// Monotonic write version. Bumped by every committed modification;
  /// pcache frames remember the version they loaded so TxBegin can drop
  /// stale cached pages (acquire semantics at transaction boundaries).
  std::uint64_t version = 0;
  /// CRC-32 of the page bytes as of `version`. 0 means "not yet computed"
  /// (a valid page whose content happens to CRC to 0 is re-verified as a
  /// match, so the sentinel only ever skips a check, never fails one).
  std::uint32_t crc = 0;
};

}  // namespace mm::storage
