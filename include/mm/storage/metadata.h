// MetadataManager: the distributed blob directory ("metadata management to
// locate data in the DMSH", paper §III-E). Each blob's metadata is homed on
// a deterministic node (digest mod N); lookups and updates from other nodes
// charge a network round trip to the home node. Replication entries support
// the read-only-global coherence policy (paper Fig. 3).
#pragma once

#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "mm/sim/network.h"
#include "mm/storage/blob.h"
#include "mm/util/mutex.h"
#include "mm/util/status.h"

namespace mm::storage {

class MetadataManager {
 public:
  MetadataManager(std::size_t num_nodes, sim::Network* network)
      : network_(network), shards_(num_nodes) {}

  std::size_t HomeNode(const BlobId& id) const {
    return static_cast<std::size_t>(id.Digest() % shards_.size());
  }

  /// Looks up a blob's primary location. `from_node` pays the round trip
  /// when it is not the home node. `*done` receives the reply time.
  StatusOr<BlobLocation> Lookup(const BlobId& id, std::size_t from_node,
                                sim::SimTime now, sim::SimTime* done) const;

  /// Batched lookup: queries for many blobs are coalesced into one request
  /// per home shard (the shard round trips proceed in parallel, so `*done`
  /// advances by roughly a single round trip). Entries are nullopt for
  /// unknown blobs. Used by the transaction-begin acquire pass.
  std::vector<std::optional<BlobLocation>> LookupBatch(
      const std::vector<BlobId>& ids, std::size_t from_node, sim::SimTime now,
      sim::SimTime* done) const;

  /// Inserts or overwrites a blob's primary location.
  Status Update(const BlobId& id, const BlobLocation& loc,
                std::size_t from_node, sim::SimTime now, sim::SimTime* done);

  /// Removes a blob (and its replicas). NotFound if absent.
  Status Remove(const BlobId& id, std::size_t from_node, sim::SimTime now,
                sim::SimTime* done);

  /// Registers a replica of a read-only blob on `replica_node` so nearby
  /// readers can be served locally.
  Status AddReplica(const BlobId& id, std::size_t replica_node,
                    std::size_t from_node, sim::SimTime now,
                    sim::SimTime* done);

  /// Unregisters one replica (tier-failure recovery drops copies lost with
  /// a dead tier). Idempotent: absent entries/replicas are not an error.
  Status RemoveReplica(const BlobId& id, std::size_t replica_node,
                       std::size_t from_node, sim::SimTime now,
                       sim::SimTime* done);

  /// Replica set (primary excluded). Empty when none.
  std::vector<std::size_t> Replicas(const BlobId& id, std::size_t from_node,
                                    sim::SimTime now, sim::SimTime* done) const;

  /// Drops all replicas of a blob (phase change read-only -> writable).
  /// Returns the dropped replica nodes so callers can purge blob bytes.
  std::vector<std::size_t> InvalidateReplicas(const BlobId& id,
                                              std::size_t from_node,
                                              sim::SimTime now,
                                              sim::SimTime* done);

  /// All blob ids of a vector (scan; used by shutdown staging & tests).
  std::vector<BlobId> BlobsOfVector(std::uint64_t vector_id) const;

  std::size_t TotalBlobs() const;

 private:
  struct Entry {
    BlobLocation loc;
    std::vector<std::size_t> replicas;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<BlobId, Entry, BlobIdHash> entries MM_GUARDED_BY(mu);
  };

  /// Charges the control-message round trip to the home shard.
  sim::SimTime ChargeRtt(std::size_t home, std::size_t from,
                         sim::SimTime now) const;

  sim::Network* network_;
  mutable std::vector<Shard> shards_;
};

}  // namespace mm::storage
