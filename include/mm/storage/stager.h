// Data Stagers (paper §III-B "Persistently Integrating Memory with
// Storage"): pluggable backends that serialize/deserialize vector pages to
// persistent objects, selected by the vector key's URL scheme.
//
//   posix://  flat binary file, bytes map 1:1
//   shdf://   a real mini HDF5-like single-file container with named
//             datasets (the URL fragment names the dataset)
//   spar://   a real mini parquet-like columnar format: rows of float32
//             columns stored column-major in row groups; the stager
//             transposes between the app's row-major view and the file
//             layout on every read/write (the fragment gives the schema,
//             e.g. "f4x3" = 3 float32 columns)
//
// Stagers perform real file I/O; simulated PFS time is charged by the
// runtime around these calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mm/util/status.h"
#include "mm/util/uri.h"

namespace mm::storage {

class Stager {
 public:
  virtual ~Stager() = default;

  /// Byte size of the object (dataset for shdf, row data for spar).
  virtual StatusOr<std::uint64_t> Size(const Uri& uri) = 0;

  /// Creates (or truncates) the object with the given byte size.
  virtual Status Create(const Uri& uri, std::uint64_t size) = 0;

  /// Reads [offset, offset+size) of the object's logical byte stream.
  virtual Status Read(const Uri& uri, std::uint64_t offset, std::uint64_t size,
                      std::vector<std::uint8_t>* out) = 0;

  /// Writes [offset, offset+size) of the object's logical byte stream. The
  /// raw-pointer form is the primary virtual so pooled task payloads and
  /// journal records stage out without a std::vector round trip.
  virtual Status Write(const Uri& uri, std::uint64_t offset,
                       const std::uint8_t* data, std::uint64_t size) = 0;

  /// Convenience wrapper over the raw-pointer overload.
  Status Write(const Uri& uri, std::uint64_t offset,
               const std::vector<std::uint8_t>& data) {
    return Write(uri, offset, data.data(), data.size());
  }

  virtual bool Exists(const Uri& uri) = 0;
  virtual Status Remove(const Uri& uri) = 0;
};

/// Scheme -> stager dispatch. Thread-safe after construction.
class StagerRegistry {
 public:
  /// Registry with posix, shdf, and spar registered.
  static StagerRegistry& Default();

  /// Registers (or replaces) a stager for `scheme`.
  void Register(const std::string& scheme, std::unique_ptr<Stager> stager);

  /// Stager for `scheme`; error when unknown.
  StatusOr<Stager*> Get(const std::string& scheme) const;

  /// Convenience: parse `key` and return (stager, uri).
  StatusOr<std::pair<Stager*, Uri>> Resolve(const std::string& key) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Stager>> stagers_;
};

std::unique_ptr<Stager> MakePosixStager();
std::unique_ptr<Stager> MakeShdfStager();
std::unique_ptr<Stager> MakeSparStager();

}  // namespace mm::storage
