// Index read-path telemetry (DESIGN.md §11 "mm.index.*", §15). Handles are
// resolved once per tree at construction from the node's sink; the
// counters narrate the three-tier descent funnel:
//
//   node_read_count  = pcache_hit + scache_probe_hit + queue_fallback
//
// so dashboards can see exactly how much of the index traffic the
// latch-free tiers absorb before the task queue (PR 7's open follow-up).
#pragma once

#include "mm/telemetry/sink.h"

namespace mm::index {

struct IndexMetrics {
  telemetry::Counter* descents = nullptr;        // root-to-leaf walks
  telemetry::Counter* node_reads = nullptr;      // node snapshots taken
  telemetry::Counter* pcache_hits = nullptr;     // tier 1: local frame seqlock
  telemetry::Counter* scache_probes = nullptr;   // tier 2: directory-validated
  telemetry::Counter* queue_fallbacks = nullptr; // tier 3: routed fault
  telemetry::Counter* restarts = nullptr;        // descent restarts (any cause)
  telemetry::Counter* smos = nullptr;            // splits + root growths

  IndexMetrics() = default;
  explicit IndexMetrics(const telemetry::NodeSink& sink);
};

}  // namespace mm::index
