// mm::BTree — a distributed ordered index over the DSM (DESIGN.md §15).
//
// A fixed-fanout B-link tree whose nodes live one-per-page in a DSM node
// arena (`mm::Vector<NodeBlock>`), so every coherence, caching, and
// recovery property of the page layer carries over to the index:
//
//   reads    latch-free root-to-leaf descents over validated node
//            snapshots, served by a three-tier funnel: (1) the local
//            pcache frame seqlock (`Vector::TryReadOptimistic`), (2) the
//            scache-side directory-validated probe
//            (`Service::TryReadPageOptimistic` — PR 7's open follow-up),
//            (3) the routed queue fault. Fence keys + right-sibling links
//            make any committed snapshot a valid starting point: keys that
//            split away are found by moving right, and structurally
//            insane snapshots trigger a bounded restart before the queue
//            path takes over.
//   writes   Put/Delete/splits run under the SMO write lease: the
//            per-rank `smo_mu_` (annotated, in the MM_ACQUIRED_BEFORE
//            hierarchy so mm-verify MML101 checks its order) nested around
//            the cross-rank `DistributedLock`. The lease holder refreshes
//            coherence (stale clean pages dropped), mutates node pages
//            through `Vector::Set` — each store a FrameWriteGuard seqlock
//            section — and publishes level-by-level: a split commits the
//            new sibling and the shrunk+linked old node BEFORE the parent
//            separator, so concurrent readers only ever see B-link-
//            consistent states, locally and across nodes.
//
// Thread-affinity follows mm::Vector: a BTree instance belongs to one
// rank; other ranks construct their own handle with the same name. Only
// `TryGet`/`TryScan` may be called from other threads (latch-free tiers
// only — they never fault, never touch the LRU, never charge the clock).
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mm/comm/dlock.h"
#include "mm/comm/world.h"
#include "mm/core/service.h"
#include "mm/core/vector.h"
#include "mm/index/metrics.h"
#include "mm/index/node.h"
#include "mm/util/mutex.h"

namespace mm::index {

struct BTreeOptions {
  /// Arena capacity in nodes (== pages). Backing pages materialize lazily,
  /// so a generous ceiling costs nothing until allocated.
  std::uint64_t max_nodes = 1ull << 20;
  /// Per-rank pcache budget for the node arena; 0 = 64 nodes. Kept small
  /// on purpose: the descent funnel, not residency, is the fast path.
  std::uint64_t cache_bytes = 0;
  /// Latch-free descent tiers (pcache seqlock + scache probe). Off = the
  /// queue-path-only ablation bench/ycsb compares against.
  bool latch_free = true;
  /// Descent restarts (validation failure, fence-chase overrun) before the
  /// owner path falls back to queue-fault reads, mirroring
  /// TryReadPageOptimistic's bounded attempts.
  int max_restarts = 8;
  /// Lateral (right-sibling) hops tolerated within one descent.
  int max_lateral = 64;
  /// Home node of the cross-rank SMO lease.
  std::size_t lock_home = 0;
};

/// Owner-thread descent statistics (cross-thread Try* paths report through
/// their out-params and the lock-free mm.index.* counters instead).
struct DescentStats {
  std::uint64_t descents = 0;
  std::uint64_t node_reads = 0;
  std::uint64_t pcache_hits = 0;
  std::uint64_t scache_probes = 0;
  std::uint64_t queue_fallbacks = 0;
  std::uint64_t restarts = 0;
  std::uint64_t lateral_moves = 0;
  std::uint64_t smos = 0;
};

/// Non-template holder of the per-rank structure-modification lock, so the
/// lock has a fixed `Class::field` identity for mm-verify's hierarchy
/// (MML101) regardless of the tree's instantiation.
class BTreeBase {
 protected:
  /// Serializes this rank's mutating entry points (Put/Delete/Create)
  /// against each other; held across the cross-rank lease and the page
  /// layer, hence ordered before everything the write path can take.
  mutable Mutex smo_mu_ MM_ACQUIRED_BEFORE(comm::DistributedLock::mu_,
                                           core::Service::vectors_mu_,
                                           core::Service::inflight_mu_,
                                           BlockingQueue::mu_);
};

template <class K, class V, std::size_t Bytes = 4096>
class BTree : public BTreeBase {
 public:
  using Block = NodeBlock<K, V, Bytes>;
  using Ref = NodeRef<K, V, Bytes>;
  using Leaf = LeafNode<K, V, Bytes>;
  using Inner = InnerNode<K, V, Bytes>;

  BTree(core::Service& service, comm::RankContext& ctx,
        const std::string& name, BTreeOptions opt = {})
      : svc_(&service),
        ctx_(&ctx),
        opt_(opt),
        name_(name),
        arena_(service, ctx, name + "/nodes", opt.max_nodes,
               ArenaOptions(opt)),
        anchor_(service, ctx, name + "/anchor", 1, AnchorOptions()),
        // Every rank's handle leases the SAME service-registered lock
        // object: the real mutex inside it is the cross-rank exclusion.
        smo_lease_(&service.GetDistributedLock(name + "/smo_lock",
                                               opt.lock_home)),
        metrics_(service.telemetry_sink(ctx.node())) {}

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// One rank initializes the shared tree (empty root leaf + anchor) before
  /// first use; everyone barriers after. Idempotent under the lease.
  void Create() {
    MutexLock lock(smo_mu_);
    comm::DistributedLock::Guard lease(*smo_lease_, *ctx_);
    WriterTx wtx(this);
    TreeAnchor a = anchor_.Read(0);
    if (a.height != 0) {
      wtx.Finish();
      return;  // another rank won the race under an earlier lease
    }
    Block root{};
    root.hdr.level = 0;
    root.hdr.count = 0;
    root.hdr.right = kInvalidNode;
    WriteNode(0, root);
    a.root = 0;
    a.height = 1;
    a.next_node = 1;
    a.smo_epoch = 1;
    anchor_.Set(0, a);
    wtx.Finish();
  }

  /// Sync-point coherence acquire: drops stale clean node/anchor pages so
  /// this rank's next descents observe other ranks' committed updates.
  /// (Descents are correct without it — any committed snapshot reaches all
  /// keys through right links — this just shortens the lateral chains.)
  void Refresh() {
    anchor_.SeqTxBegin(0, 1, core::MM_READ_ONLY);
    anchor_.TxEnd();
    arena_.SeqTxBegin(0, arena_.size(), core::MM_READ_ONLY);
    arena_.TxEnd();
  }

  /// Publishes this rank's uncommitted modifications (Vector::Commit on
  /// arena then anchor). Mutating entry points already publish before
  /// releasing the lease; this is for explicit sync points.
  void Commit() {
    arena_.Commit();
    anchor_.Commit();
  }

  // ---- owner-thread operations ----

  /// Point lookup. Latch-free descent with bounded restart, then the queue
  /// path (owner reads of committed pages, which cannot fail validation).
  bool Get(const K& k, V* out) {
    metrics_.descents->Inc();
    ++stats_.descents;
    TreeAnchor a = ReadAnchorOwner();
    if (a.height == 0) return false;
    Block blk;
    if (!DescendOwner(k, a, &blk)) return false;
    Ref r(&blk);
    std::uint32_t i = r.LowerBound(k);
    if (i < r.count() && !(k < r.key(i))) {
      if (out != nullptr) *out = r.value(i);
      return true;
    }
    return false;
  }

  /// First key >= k, with its value. Returns false past the last key.
  bool LowerBound(const K& k, K* key_out, V* val_out) {
    std::vector<std::pair<K, V>> one;
    if (Scan(k, 1, &one) == 0) return false;
    if (key_out != nullptr) *key_out = one[0].first;
    if (val_out != nullptr) *val_out = one[0].second;
    return true;
  }

  /// Insert or update. Runs under the SMO write lease; splits propagate
  /// bottom-up with a commit barrier per level (children published before
  /// the parent names them).
  void Put(const K& k, const V& v) {
    MutexLock lock(smo_mu_);
    comm::DistributedLock::Guard lease(*smo_lease_, *ctx_);
    WriterTx wtx(this);
    TreeAnchor a = anchor_.Read(0);
    MM_CHECK_MSG(a.height != 0, "BTree::Put before Create()");
    std::vector<std::uint64_t> path;
    Block blk;
    DescendForWrite(k, a, &blk, &path);
    const std::uint64_t leaf_id = path.back();

    Ref r(&blk);
    std::uint32_t i = r.LowerBound(k);
    if (i < blk.hdr.count && !(k < blk.leaf.keys[i])) {
      blk.leaf.vals[i] = v;  // in-place update, single-page atomic publish
      WriteNode(leaf_id, blk);
      wtx.Finish();
      return;
    }
    if (blk.hdr.count < Leaf::kCap) {
      InsertLeafSlot(&blk, i, k, v);
      WriteNode(leaf_id, blk);
      wtx.Finish();
      return;
    }
    SplitAndInsert(&a, path, blk, k, v);
    anchor_.Set(0, a);
    wtx.Finish();
  }

  /// Removes k if present. Leaves are shrunk in place — no merging or
  /// rebalancing (underfull leaves persist; §15 documents the trade).
  bool Delete(const K& k) {
    MutexLock lock(smo_mu_);
    comm::DistributedLock::Guard lease(*smo_lease_, *ctx_);
    WriterTx wtx(this);
    TreeAnchor a = anchor_.Read(0);
    MM_CHECK_MSG(a.height != 0, "BTree::Delete before Create()");
    std::vector<std::uint64_t> path;
    Block blk;
    DescendForWrite(k, a, &blk, &path);
    Ref r(&blk);
    std::uint32_t i = r.LowerBound(k);
    if (i >= blk.hdr.count || k < blk.leaf.keys[i]) {
      wtx.Finish();
      return false;
    }
    for (std::uint32_t j = i; j + 1 < blk.hdr.count; ++j) {
      blk.leaf.keys[j] = blk.leaf.keys[j + 1];
      blk.leaf.vals[j] = blk.leaf.vals[j + 1];
    }
    --blk.hdr.count;
    WriteNode(path.back(), blk);
    wtx.Finish();
    return true;
  }

  /// Ordered range scan: up to `limit` pairs with key >= from, appended to
  /// *out in strictly increasing key order. Returns the number appended.
  /// Strictness is enforced across leaf hops (a concurrent split can
  /// present a key twice — once in the old leaf, once right of it).
  std::uint64_t Scan(const K& from, std::uint64_t limit,
                     std::vector<std::pair<K, V>>* out) {
    metrics_.descents->Inc();
    ++stats_.descents;
    TreeAnchor a = ReadAnchorOwner();
    if (a.height == 0 || limit == 0) return 0;
    Block blk;
    if (!DescendOwner(from, a, &blk)) return 0;
    std::uint64_t emitted = 0;
    K last{};
    int hops = 0;
    while (emitted < limit) {
      Ref r(&blk);
      for (std::uint32_t i = r.LowerBound(from); i < r.count(); ++i) {
        const K& key = r.key(i);
        if (emitted > 0 && !(last < key)) continue;  // split replay
        out->emplace_back(key, r.value(i));
        last = key;
        if (++emitted >= limit) break;
      }
      if (emitted >= limit || r.right() == kInvalidNode) break;
      if (++hops > static_cast<int>(opt_.max_nodes)) break;  // cycle guard
      ReadNodeOwner(r.right(), &blk, /*leaf_hint=*/true);
    }
    return emitted;
  }

  // ---- cross-thread latch-free probes ----

  /// Lock-free point lookup from ANY thread while the owner mutates: only
  /// the latch-free tiers, bounded restarts, no faulting, no clock. A
  /// false return with `*conclusive == false` means "couldn't tell" (miss
  /// or persistent races) — callers retry or route to the owner thread.
  bool TryGet(const K& k, V* out, bool* conclusive = nullptr,
              int* restarts = nullptr) const {
    if (conclusive != nullptr) *conclusive = false;
    TreeAnchor a;
    if (!TryReadAnchor(&a)) return false;
    if (a.height == 0) return false;
    for (int attempt = 0; attempt <= opt_.max_restarts; ++attempt) {
      Block blk;
      int rc = TryDescend(k, a, &blk);
      if (rc < 0) return false;  // a tier-1/2 miss: inconclusive
      if (rc > 0) {              // structural restart
        if (restarts != nullptr) ++*restarts;
        metrics_.restarts->Inc();
        continue;
      }
      Ref r(&blk);
      std::uint32_t i = r.LowerBound(k);
      if (conclusive != nullptr) *conclusive = true;
      if (i < r.count() && !(k < r.key(i))) {
        if (out != nullptr) *out = r.value(i);
        return true;
      }
      return false;
    }
    return false;
  }

  /// Lock-free ordered scan from any thread. Returns the count appended,
  /// or -1 when inconclusive (miss/races); output is strictly sorted.
  std::int64_t TryScan(const K& from, std::uint64_t limit,
                       std::vector<std::pair<K, V>>* out) const {
    TreeAnchor a;
    if (!TryReadAnchor(&a) || a.height == 0) return -1;
    for (int attempt = 0; attempt <= opt_.max_restarts; ++attempt) {
      Block blk;
      int rc = TryDescend(from, a, &blk);
      if (rc < 0) return -1;
      if (rc > 0) {
        metrics_.restarts->Inc();
        continue;
      }
      const std::size_t base = out->size();
      std::uint64_t emitted = 0;
      K last{};
      bool inconclusive = false;
      int hops = 0;
      while (emitted < limit) {
        Ref r(&blk);
        if (!r.Sane(0, opt_.max_nodes)) {
          inconclusive = true;  // racing writer: retry whole scan
          break;
        }
        for (std::uint32_t i = r.LowerBound(from); i < r.count(); ++i) {
          const K& key = r.key(i);
          if (emitted > 0 && !(last < key)) continue;
          out->emplace_back(key, r.value(i));
          last = key;
          if (++emitted >= limit) break;
        }
        if (emitted >= limit || r.right() == kInvalidNode) break;
        if (++hops > static_cast<int>(opt_.max_nodes)) {
          inconclusive = true;
          break;
        }
        if (!TryReadNode(r.right(), &blk)) {
          inconclusive = true;
          break;
        }
      }
      if (!inconclusive) return static_cast<std::int64_t>(emitted);
      out->resize(base);
    }
    return -1;
  }

  // ---- introspection ----

  /// Structural integrity walk (owner thread): every leaf reachable along
  /// the bottom chain, keys strictly sorted globally, levels consistent.
  /// Used by the node-death test after CollectiveRecover.
  Status CheckIntegrity(std::uint64_t* keys_out = nullptr) {
    TreeAnchor a = ReadAnchorOwner();
    if (a.height == 0) {
      if (keys_out != nullptr) *keys_out = 0;
      return Status::Ok();
    }
    // Leftmost spine: child(0) at every inner level.
    Block blk;
    ReadNodeOwner(a.root, &blk, /*leaf_hint=*/a.height == 1);
    int guard = 0;
    while (blk.hdr.level > 0) {
      Ref r(&blk);
      if (!r.Sane(blk.hdr.level, opt_.max_nodes)) {
        return Internal("insane inner node on leftmost spine");
      }
      if (++guard > 64) return Internal("leftmost spine too deep");
      ReadNodeOwner(r.child(0), &blk, /*leaf_hint=*/blk.hdr.level == 1);
    }
    // Bottom chain: strict global order, bounded length.
    std::uint64_t keys = 0;
    bool have_last = false;
    K last{};
    std::uint64_t hops = 0;
    while (true) {
      Ref r(&blk);
      if (!r.Sane(0, opt_.max_nodes)) return Internal("insane leaf");
      for (std::uint32_t i = 0; i < r.count(); ++i) {
        if (have_last && !(last < r.key(i))) {
          return Internal("leaf chain keys out of order");
        }
        last = r.key(i);
        have_last = true;
        ++keys;
      }
      if (r.right() == kInvalidNode) break;
      if (++hops > opt_.max_nodes) return Internal("leaf chain cycle");
      ReadNodeOwner(r.right(), &blk, /*leaf_hint=*/true);
    }
    if (keys_out != nullptr) *keys_out = keys;
    return Status::Ok();
  }

  const DescentStats& stats() const { return stats_; }
  const BTreeOptions& options() const { return opt_; }
  const std::string& name() const { return name_; }
  TreeAnchor anchor_snapshot() { return ReadAnchorOwner(); }

 private:
  static core::VectorOptions ArenaOptions(const BTreeOptions& o) {
    core::VectorOptions vo;
    vo.page_size = sizeof(Block);  // one node per page: frame seqlock == node lock
    vo.pcache_bytes =
        o.cache_bytes != 0 ? o.cache_bytes : 64 * sizeof(Block);
    vo.prefetch_depth = 0;  // descents are pointer chases; prefetch is noise
    vo.nonvolatile = false;
    vo.optimistic_readers = true;
    return vo;
  }
  static core::VectorOptions AnchorOptions() {
    core::VectorOptions vo;
    vo.page_size = sizeof(TreeAnchor);
    vo.pcache_bytes = 4 * sizeof(TreeAnchor);
    vo.prefetch_depth = 0;
    vo.nonvolatile = false;
    vo.optimistic_readers = true;
    return vo;
  }

  /// Write lease body: coherence acquire at entry (stale clean pages
  /// dropped so the holder reads the latest committed tree), publish at
  /// Finish (arena before anchor, so a root switch never outruns the root
  /// node's bytes).
  class WriterTx {
   public:
    explicit WriterTx(BTree* t) : t_(t) {
      t_->anchor_.SeqTxBegin(0, 1, core::MM_READ_WRITE);
      t_->arena_.SeqTxBegin(0, t_->arena_.size(), core::MM_READ_WRITE);
    }
    void Finish() {
      if (done_) return;
      done_ = true;
      t_->arena_.TxEnd();
      t_->anchor_.TxEnd();
    }
    ~WriterTx() noexcept(false) { Finish(); }
    WriterTx(const WriterTx&) = delete;
    WriterTx& operator=(const WriterTx&) = delete;

   private:
    BTree* t_;
    bool done_ = false;
  };

  void WriteNode(std::uint64_t id, const Block& blk) {
    // Vector::Set brackets the store in a FrameWriteGuard seqlock section
    // (optimistic_readers is on) and marks the element dirty; the commit
    // at lease end routes it through the coherence directory so remote
    // replicas invalidate.
    arena_.Set(id, blk);
  }

  TreeAnchor ReadAnchorOwner() {
    TreeAnchor a;
    if (anchor_.TryReadOptimistic(0, &a)) return a;
    return anchor_.Read(0);
  }

  bool TryReadAnchor(TreeAnchor* a) const {
    if (anchor_.TryReadOptimistic(0, a)) return true;
    return TryProbeScache(anchor_meta(), 0, a, sizeof(TreeAnchor));
  }

  /// Tier 1 + 2 node snapshot; false = inconclusive miss. Any thread.
  bool TryReadNode(std::uint64_t id, Block* out) const {
    if (!opt_.latch_free) return false;
    metrics_.node_reads->Inc();
    if (arena_.TryReadOptimistic(id, out)) {
      metrics_.pcache_hits->Inc();
      return true;
    }
    if (TryProbeScache(arena_meta(), id, out, sizeof(Block))) {
      metrics_.scache_probes->Inc();
      return true;
    }
    return false;
  }

  /// Directory-validated scache copy on the calling thread (thread-safe:
  /// the metadata and buffer managers are internally synchronized). Uses a
  /// detached virtual timestamp — cross-thread probes have no rank clock
  /// to charge, exactly like Vector::TryReadOptimistic.
  template <class T>
  bool TryProbeScache(core::VectorMeta& meta, std::uint64_t page, T* out,
                      std::size_t bytes) const {
    sim::SimTime done = 0.0;
    auto data = svc_->TryReadPageOptimistic(meta, page, ctx_->node(), 0.0,
                                            &done);
    if (!data.has_value() || data->size() < bytes) return false;
    std::memcpy(out, data->data(), bytes);
    return true;
  }

  /// Owner-thread node snapshot through the three-tier funnel. The funnel
  /// is level-aware: inner nodes — a handful of hot pages by construction —
  /// stage through the normal fault tier on a miss so the tree's upper
  /// levels stay pcache-resident, while leaf reads (the overwhelming bulk
  /// of the arena) go pcache seqlock → scache probe → queue and never
  /// stage, so leaf traffic cannot thrash the frames the inners live in.
  /// The queue tier cannot fail (committed pages always serve).
  void ReadNodeOwner(std::uint64_t id, Block* out, bool leaf_hint) {
    metrics_.node_reads->Inc();
    ++stats_.node_reads;
    ctx_->Compute(ctx_->costs().memory_access_s +
                  ctx_->costs().mm_access_overhead_s);
    if (opt_.latch_free) {
      if (arena_.TryReadOptimistic(id, out)) {
        metrics_.pcache_hits->Inc();
        ++stats_.pcache_hits;
        return;
      }
      if (leaf_hint) {
        sim::SimTime t0 = ctx_->clock().now();
        sim::SimTime t1 = t0;
        auto data = svc_->TryReadPageOptimistic(arena_.meta(), id,
                                                ctx_->node(), t0, &t1);
        ctx_->clock().AdvanceTo(t1);
        if (data.has_value() && data->size() >= sizeof(Block)) {
          std::memcpy(out, data->data(), sizeof(Block));
          metrics_.scache_probes->Inc();
          ++stats_.scache_probes;
          return;
        }
      }
    }
    metrics_.queue_fallbacks->Inc();
    ++stats_.queue_fallbacks;
    *out = arena_.Read(id);
  }

  /// Shared descent step semantics: walk from the anchor's root to the
  /// leaf covering k, moving right past fences, validating every snapshot.
  /// Returns 0 = *out is the leaf, 1 = restart (structural anomaly),
  /// -1 = inconclusive read (Try path only).
  /// ReadFn is (id, expected_level, out) -> bool so the funnel can route
  /// inner levels and leaves to different tiers. The expected level comes
  /// from the anchor (height - 1 at the root), not from the node bytes —
  /// Sane() then cross-checks every snapshot against it, so a stale
  /// root-vs-anchor pairing surfaces as a restart, never a wrong walk.
  template <class ReadFn>
  int DescendWith(const K& k, const TreeAnchor& a, Block* out,
                  ReadFn&& read, std::vector<std::uint64_t>* path) const {
    if (a.root >= opt_.max_nodes || a.height == 0 || a.height >= 64) return 1;
    std::uint32_t level = static_cast<std::uint32_t>(a.height - 1);
    std::uint64_t id = a.root;
    if (!read(id, level, out)) return -1;
    int lateral = 0;
    while (true) {
      Ref r(out);
      if (!r.Sane(level, opt_.max_nodes)) return 1;
      if (r.FenceMiss(k) && r.right() != kInvalidNode) {
        if (++lateral > opt_.max_lateral) return 1;
        id = r.right();
        if (!read(id, level, out)) return -1;
        continue;  // same expected level
      }
      if (path != nullptr) {
        // Record the node actually used at this level (post fence-chase).
        if (path->empty() || path->back() != id) path->push_back(id);
      }
      if (level == 0) return 0;
      id = r.ChildFor(k);
      --level;
      if (!read(id, level, out)) return -1;
    }
  }

  /// Owner descent: latch-free with bounded restarts, then one final pass
  /// on the queue tier alone (committed reads cannot fail validation, but
  /// keep the structural guards — a zeroed never-written page must surface
  /// as Internal, not UB).
  bool DescendOwner(const K& k, const TreeAnchor& a, Block* out) {
    auto funnel = [this](std::uint64_t id, std::uint32_t lvl, Block* b) {
      ReadNodeOwner(id, b, /*leaf_hint=*/lvl == 0);
      return true;
    };
    for (int attempt = 0; attempt <= opt_.max_restarts; ++attempt) {
      int rc = DescendWith(k, a, out, funnel, nullptr);
      if (rc == 0) return true;
      metrics_.restarts->Inc();
      ++stats_.restarts;
    }
    auto queue_only = [this](std::uint64_t id, std::uint32_t, Block* b) {
      metrics_.node_reads->Inc();
      ++stats_.node_reads;
      metrics_.queue_fallbacks->Inc();
      ++stats_.queue_fallbacks;
      *b = arena_.Read(id);
      return true;
    };
    int rc = DescendWith(k, a, out, queue_only, nullptr);
    if (rc != 0) {
      throw std::runtime_error("mm::BTree descent failed on committed state"
                               " (tree '" + name_ + "' corrupt?)");
    }
    return true;
  }

  /// Cross-thread descent attempt: tiers 1+2 only.
  int TryDescend(const K& k, const TreeAnchor& a, Block* out) const {
    auto probe = [this](std::uint64_t id, std::uint32_t, Block* b) {
      return TryReadNode(id, b);
    };
    return DescendWith(k, a, out, probe, nullptr);
  }

  /// Writer descent under the lease: coherent by construction, records the
  /// exact node id used per level (root first, leaf last).
  void DescendForWrite(const K& k, const TreeAnchor& a, Block* leaf,
                       std::vector<std::uint64_t>* path) {
    auto funnel = [this](std::uint64_t id, std::uint32_t lvl, Block* b) {
      ReadNodeOwner(id, b, /*leaf_hint=*/lvl == 0);
      return true;
    };
    int rc = DescendWith(k, a, leaf, funnel, path);
    if (rc != 0) {
      // The lease excludes concurrent writers, so a structural anomaly here
      // is not a race: re-read through the queue tier once, then give up.
      path->clear();
      auto queue_only = [this](std::uint64_t id, std::uint32_t, Block* b) {
        *b = arena_.Read(id);
        return true;
      };
      rc = DescendWith(k, a, leaf, queue_only, path);
      MM_CHECK_MSG(rc == 0, "mm::BTree writer descent failed under lease");
    }
  }

  static void InsertLeafSlot(Block* blk, std::uint32_t i, const K& k,
                             const V& v) {
    for (std::uint32_t j = blk->hdr.count; j > i; --j) {
      blk->leaf.keys[j] = blk->leaf.keys[j - 1];
      blk->leaf.vals[j] = blk->leaf.vals[j - 1];
    }
    blk->leaf.keys[i] = k;
    blk->leaf.vals[i] = v;
    ++blk->hdr.count;
  }

  std::uint64_t AllocNode(TreeAnchor* a) {
    MM_CHECK_MSG(a->next_node < opt_.max_nodes,
                 "mm::BTree node arena exhausted (raise max_nodes)");
    return a->next_node++;
  }

  /// Full-leaf insert: split, publish bottom-up with a commit barrier per
  /// level. The new sibling is written before the old node shrinks and
  /// links to it, and both are committed before the parent separator —
  /// so every committed prefix is a consistent B-link tree.
  void SplitAndInsert(TreeAnchor* a, const std::vector<std::uint64_t>& path,
                      Block leaf, const K& k, const V& v) {
    metrics_.smos->Inc();
    ++stats_.smos;
    const std::uint64_t left_id = path.back();
    const std::uint64_t right_id = AllocNode(a);

    const std::uint32_t mid = leaf.hdr.count / 2;
    Block right{};
    right.hdr.level = 0;
    right.hdr.count = leaf.hdr.count - mid;
    right.hdr.right = leaf.hdr.right;
    right.hdr.flags = leaf.hdr.flags;
    right.leaf.fence = leaf.leaf.fence;
    for (std::uint32_t j = 0; j < right.hdr.count; ++j) {
      right.leaf.keys[j] = leaf.leaf.keys[mid + j];
      right.leaf.vals[j] = leaf.leaf.vals[mid + j];
    }
    K sep = right.leaf.keys[0];
    leaf.hdr.count = mid;
    leaf.hdr.right = right_id;
    leaf.hdr.flags |= NodeHeader::kHasFence;
    leaf.leaf.fence = sep;

    // Route the pending insert to its half, then publish sibling-first.
    if (k < sep) {
      Ref r(&leaf);
      InsertLeafSlot(&leaf, r.LowerBound(k), k, v);
    } else {
      Ref r(&right);
      InsertLeafSlot(&right, r.LowerBound(k), k, v);
    }
    WriteNode(right_id, right);
    WriteNode(left_id, leaf);

    // Propagate (sep, right_id) upward; path.size()-2 is the leaf's parent.
    std::uint64_t child_right = right_id;
    int p = static_cast<int>(path.size()) - 2;
    while (true) {
      arena_.Commit();  // level barrier: children visible before the parent
      if (p < 0) {
        GrowRoot(a, path.front(), sep, child_right);
        return;
      }
      Block parent;
      ReadNodeOwner(path[static_cast<std::size_t>(p)], &parent,
                    /*leaf_hint=*/false);
      Ref pr(&parent);
      std::uint32_t i = pr.LowerBound(sep);
      if (parent.hdr.count < Inner::kCap) {
        for (std::uint32_t j = parent.hdr.count; j > i; --j) {
          parent.inner.seps[j] = parent.inner.seps[j - 1];
          parent.inner.children[j + 1] = parent.inner.children[j];
        }
        parent.inner.seps[i] = sep;
        parent.inner.children[i + 1] = child_right;
        ++parent.hdr.count;
        WriteNode(path[static_cast<std::size_t>(p)], parent);
        return;
      }
      // Inner split: push up seps[mid]; the right half takes the upper
      // separators and children, the left keeps fence = pushed separator.
      metrics_.smos->Inc();
      ++stats_.smos;
      const std::uint64_t inner_right_id = AllocNode(a);
      const std::uint32_t c = parent.hdr.count;
      const std::uint32_t m = c / 2;
      K up = parent.inner.seps[m];
      Block iright{};
      iright.hdr.level = parent.hdr.level;
      iright.hdr.count = c - m - 1;
      iright.hdr.right = parent.hdr.right;
      iright.hdr.flags = parent.hdr.flags;
      iright.inner.fence = parent.inner.fence;
      for (std::uint32_t j = 0; j < iright.hdr.count; ++j) {
        iright.inner.seps[j] = parent.inner.seps[m + 1 + j];
      }
      for (std::uint32_t j = 0; j <= iright.hdr.count; ++j) {
        iright.inner.children[j] = parent.inner.children[m + 1 + j];
      }
      parent.hdr.count = m;
      parent.hdr.right = inner_right_id;
      parent.hdr.flags |= NodeHeader::kHasFence;
      parent.inner.fence = up;
      // The pending (sep, child_right) lands in whichever half covers it.
      Block* target = (sep < up) ? &parent : &iright;
      Ref tr(target);
      std::uint32_t ti = tr.LowerBound(sep);
      for (std::uint32_t j = target->hdr.count; j > ti; --j) {
        target->inner.seps[j] = target->inner.seps[j - 1];
        target->inner.children[j + 1] = target->inner.children[j];
      }
      target->inner.seps[ti] = sep;
      target->inner.children[ti + 1] = child_right;
      ++target->hdr.count;
      WriteNode(inner_right_id, iright);
      WriteNode(path[static_cast<std::size_t>(p)], parent);
      sep = up;
      child_right = inner_right_id;
      --p;
    }
  }

  void GrowRoot(TreeAnchor* a, std::uint64_t left, const K& sep,
                std::uint64_t right) {
    metrics_.smos->Inc();
    ++stats_.smos;
    const std::uint64_t root_id = AllocNode(a);
    Block root{};
    Block probe;
    ReadNodeOwner(left, &probe, /*leaf_hint=*/false);
    root.hdr.level = probe.hdr.level + 1;
    root.hdr.count = 1;
    root.hdr.right = kInvalidNode;
    root.inner.seps[0] = sep;
    root.inner.children[0] = left;
    root.inner.children[1] = right;
    WriteNode(root_id, root);
    arena_.Commit();  // root bytes visible before the anchor names them
    a->root = root_id;
    a->height = probe.hdr.level + 2;
    ++a->smo_epoch;
  }

  core::VectorMeta& arena_meta() const {
    return const_cast<BTree*>(this)->arena_.meta();
  }
  core::VectorMeta& anchor_meta() const {
    return const_cast<BTree*>(this)->anchor_.meta();
  }

  core::Service* svc_;
  comm::RankContext* ctx_;
  BTreeOptions opt_;
  std::string name_;
  core::Vector<Block> arena_;
  core::Vector<TreeAnchor> anchor_;
  comm::DistributedLock* smo_lease_;
  IndexMetrics metrics_;
  DescentStats stats_;
};

}  // namespace mm::index
