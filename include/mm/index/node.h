// B-link tree node layout (DESIGN.md §15). One node occupies exactly one
// DSM page of the tree's node arena (`page_size == sizeof(NodeBlock)`), so
// the pcache frame seqlock IS the node's version lock and a validated
// OptimisticGuard copy of the page is a consistent node snapshot.
//
// Both node kinds share a header carrying the B-link invariants:
//
//   level    0 = leaf, >0 = inner; a descent checks it against the level it
//            expects, so a torn/recycled/stale page can never be followed.
//   right    right-sibling node id at the same level (kInvalidNode at the
//            rightmost edge). Splits publish the new sibling FIRST, then
//            shrink the old node and link it — so a reader holding any
//            committed snapshot reaches every key by moving right.
//   fence    exclusive upper bound of the keys under this node (valid when
//            kHasFence is set; the rightmost node of a level has none). A
//            search key >= fence means "the key moved right of here".
//
// Raw field access (`keys`/`vals`/`seps`/`children`/`hdr` on a node) is the
// index subsystem's private business: outside include/mm/index + src/index
// it is flagged by ci/mm_lint.py rule MML011 — external code goes through
// `NodeRef` (read view) or the `mm::BTree` API.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mm::index {

inline constexpr std::uint64_t kInvalidNode = ~0ULL;

struct NodeHeader {
  std::uint32_t level = 0;
  std::uint32_t count = 0;
  std::uint64_t right = kInvalidNode;
  std::uint64_t flags = 0;

  static constexpr std::uint64_t kHasFence = 1ull << 0;
};

/// Leaf: sorted keys with their values, slotted into fixed arrays.
template <class K, class V, std::size_t Bytes>
struct LeafNode {
  static constexpr std::size_t kCap =
      (Bytes - sizeof(NodeHeader) - sizeof(K)) / (sizeof(K) + sizeof(V));
  NodeHeader hdr;
  K fence;
  K keys[kCap];
  V vals[kCap];
};

/// Inner: `count` separators and `count + 1` children; child(i) covers
/// keys in [sep(i-1), sep(i)).
template <class K, class V, std::size_t Bytes>
struct InnerNode {
  static constexpr std::size_t kCap =
      (Bytes - sizeof(NodeHeader) - sizeof(K) - sizeof(std::uint64_t)) /
      (sizeof(K) + sizeof(std::uint64_t));
  NodeHeader hdr;
  K fence;
  K seps[kCap];
  std::uint64_t children[kCap + 1];
};

/// One arena element == one DSM page. The union pads to exactly `Bytes`;
/// both layouts begin with NodeHeader (common initial sequence), so
/// `blk.hdr.level` dispatches the kind for any committed snapshot.
template <class K, class V, std::size_t Bytes = 4096>
union NodeBlock {
  NodeHeader hdr;
  LeafNode<K, V, Bytes> leaf;
  InnerNode<K, V, Bytes> inner;
  std::uint8_t raw[Bytes];

  // The variant members' implicit ctors are non-trivial (NodeHeader has
  // default member initializers), so spell out a zero-filling default —
  // a zero page is also what an unwritten arena page reads as.
  NodeBlock() : raw{} {}

  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_copyable_v<V>,
                "mm::BTree keys and values travel as raw page bytes");
  static_assert(sizeof(LeafNode<K, V, Bytes>) <= Bytes &&
                    sizeof(InnerNode<K, V, Bytes>) <= Bytes,
                "node layouts must fit one arena page");
  static_assert(LeafNode<K, V, Bytes>::kCap >= 4 &&
                    InnerNode<K, V, Bytes>::kCap >= 4,
                "fanout too small: raise node_bytes or shrink the value");
};

/// Read-only typed view over a node snapshot — the sanctioned accessor for
/// everything outside the index subsystem (MML011), and the validation
/// surface descents use before trusting a snapshot.
template <class K, class V, std::size_t Bytes = 4096>
class NodeRef {
 public:
  using Block = NodeBlock<K, V, Bytes>;

  explicit NodeRef(const Block* blk) : blk_(blk) {}

  bool is_leaf() const { return blk_->hdr.level == 0; }
  std::uint32_t level() const { return blk_->hdr.level; }
  std::uint32_t count() const { return blk_->hdr.count; }
  std::uint64_t right() const { return blk_->hdr.right; }
  bool has_fence() const {
    return (blk_->hdr.flags & NodeHeader::kHasFence) != 0;
  }
  const K& fence() const { return blk_->leaf.fence; }

  const K& key(std::uint32_t i) const { return blk_->leaf.keys[i]; }
  const V& value(std::uint32_t i) const { return blk_->leaf.vals[i]; }
  const K& sep(std::uint32_t i) const { return blk_->inner.seps[i]; }
  std::uint64_t child(std::uint32_t i) const {
    return blk_->inner.children[i];
  }

  /// First slot whose key/separator is >= k (== count() when none).
  std::uint32_t LowerBound(const K& k) const {
    const K* arr = is_leaf() ? blk_->leaf.keys : blk_->inner.seps;
    std::uint32_t lo = 0, hi = count();
    while (lo < hi) {
      std::uint32_t mid = lo + (hi - lo) / 2;
      if (arr[mid] < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Descent routing: the child covering k, after the caller has ruled out
  /// a fence miss (k >= fence ⇒ move right instead of descending).
  std::uint64_t ChildFor(const K& k) const {
    std::uint32_t i = LowerBound(k);
    // Separators are exclusive upper bounds: k == sep(i) belongs right.
    if (i < count() && !(k < blk_->inner.seps[i])) ++i;
    return blk_->inner.children[i];
  }

  /// Keys moved right of this snapshot: follow hdr.right instead.
  bool FenceMiss(const K& k) const {
    return has_fence() && !(k < blk_->leaf.fence);
  }

  /// Structural sanity of a snapshot: expected level, bounded count, keys
  /// strictly sorted, children under the allocation horizon. A snapshot
  /// failing this (torn commit interleaving, recycled frame, stale zero
  /// page) sends the descent into a restart, never into undefined behavior.
  bool Sane(std::uint32_t expected_level, std::uint64_t next_node) const {
    if (blk_->hdr.level != expected_level) return false;
    const std::uint32_t cap = is_leaf()
                                  ? static_cast<std::uint32_t>(
                                        LeafNode<K, V, Bytes>::kCap)
                                  : static_cast<std::uint32_t>(
                                        InnerNode<K, V, Bytes>::kCap);
    if (count() > cap) return false;
    const K* arr = is_leaf() ? blk_->leaf.keys : blk_->inner.seps;
    for (std::uint32_t i = 1; i < count(); ++i) {
      if (!(arr[i - 1] < arr[i])) return false;
    }
    if (!is_leaf()) {
      for (std::uint32_t i = 0; i <= count(); ++i) {
        if (blk_->inner.children[i] >= next_node) return false;
      }
    }
    if (right() != kInvalidNode && right() >= next_node) return false;
    return true;
  }

 private:
  const Block* blk_;
};

/// Tree anchor: one element of its own single-page vector. `height == 0`
/// means "not yet created". Readers may act on a stale committed anchor —
/// an old root still reaches every key through right links — so the anchor
/// is a hint for descent entry, not a coherence point; writers refresh it
/// under the SMO lease before structural changes.
struct TreeAnchor {
  std::uint64_t root = 0;
  std::uint64_t height = 0;     // levels; 1 = root is a leaf
  std::uint64_t next_node = 0;  // arena allocation cursor (bump-only)
  std::uint64_t smo_epoch = 0;  // structure-modification generation
};

}  // namespace mm::index
