// Umbrella header for the MegaMmap public API.
//
//   #include <mm/mega_mmap.h>
//
//   auto cluster = mm::sim::Cluster::PaperTestbed(4);
//   mm::core::ServiceOptions sopts;
//   sopts.tier_grants = {{mm::sim::TierKind::kDram, MEGABYTES(256)},
//                        {mm::sim::TierKind::kNvme, GIGABYTES(1)}};
//   mm::core::Service service(cluster.get(), sopts);
//   mm::comm::RunRanks(*cluster, nranks, per_node, [&](auto& ctx) {
//     mm::Vector<double> v(service, ctx, "posix:///tmp/data.bin", 1 << 20);
//     ...
//   });
#pragma once

#include "mm/comm/communicator.h"
#include "mm/comm/dlock.h"
#include "mm/comm/launch.h"
#include "mm/core/coherence.h"
#include "mm/core/options.h"
#include "mm/core/service.h"
#include "mm/core/transaction.h"
#include "mm/core/vector.h"
#include "mm/sim/cluster.h"
#include "mm/util/byte_units.h"

namespace mm {

/// The primary public type: a tiered, distributed, nonvolatile shared
/// vector (alias of mm::core::Vector).
template <typename T>
using Vector = core::Vector<T>;

using core::CoherenceMode;
using core::Service;
using core::ServiceOptions;
using core::VectorOptions;
using core::MM_APPEND_ONLY;
using core::MM_COLLECTIVE;
using core::MM_READ_ONLY;
using core::MM_READ_WRITE;
using core::MM_WRITE_ONLY;

}  // namespace mm
