# Empty compiler generated dependencies file for test_vector_property.
# This may be replaced when dependencies are built.
