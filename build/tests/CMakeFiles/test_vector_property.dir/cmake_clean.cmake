file(REMOVE_RECURSE
  "CMakeFiles/test_vector_property.dir/test_vector_property.cc.o"
  "CMakeFiles/test_vector_property.dir/test_vector_property.cc.o.d"
  "test_vector_property"
  "test_vector_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
