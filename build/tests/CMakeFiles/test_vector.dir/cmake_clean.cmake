file(REMOVE_RECURSE
  "CMakeFiles/test_vector.dir/test_vector.cc.o"
  "CMakeFiles/test_vector.dir/test_vector.cc.o.d"
  "test_vector"
  "test_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
