# Empty compiler generated dependencies file for test_apps_gray_scott.
# This may be replaced when dependencies are built.
