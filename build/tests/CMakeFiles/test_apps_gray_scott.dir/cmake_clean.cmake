file(REMOVE_RECURSE
  "CMakeFiles/test_apps_gray_scott.dir/test_apps_gray_scott.cc.o"
  "CMakeFiles/test_apps_gray_scott.dir/test_apps_gray_scott.cc.o.d"
  "test_apps_gray_scott"
  "test_apps_gray_scott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_gray_scott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
