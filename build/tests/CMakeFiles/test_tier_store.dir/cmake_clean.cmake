file(REMOVE_RECURSE
  "CMakeFiles/test_tier_store.dir/test_tier_store.cc.o"
  "CMakeFiles/test_tier_store.dir/test_tier_store.cc.o.d"
  "test_tier_store"
  "test_tier_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tier_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
