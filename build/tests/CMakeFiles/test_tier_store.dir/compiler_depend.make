# Empty compiler generated dependencies file for test_tier_store.
# This may be replaced when dependencies are built.
