file(REMOVE_RECURSE
  "CMakeFiles/test_apps_kmeans.dir/test_apps_kmeans.cc.o"
  "CMakeFiles/test_apps_kmeans.dir/test_apps_kmeans.cc.o.d"
  "test_apps_kmeans"
  "test_apps_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
