# Empty compiler generated dependencies file for test_apps_kmeans.
# This may be replaced when dependencies are built.
