# Empty dependencies file for test_pcache.
# This may be replaced when dependencies are built.
