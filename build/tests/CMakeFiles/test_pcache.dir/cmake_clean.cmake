file(REMOVE_RECURSE
  "CMakeFiles/test_pcache.dir/test_pcache.cc.o"
  "CMakeFiles/test_pcache.dir/test_pcache.cc.o.d"
  "test_pcache"
  "test_pcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
