# Empty dependencies file for test_apps_dbscan.
# This may be replaced when dependencies are built.
