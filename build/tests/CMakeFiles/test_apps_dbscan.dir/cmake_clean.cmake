file(REMOVE_RECURSE
  "CMakeFiles/test_apps_dbscan.dir/test_apps_dbscan.cc.o"
  "CMakeFiles/test_apps_dbscan.dir/test_apps_dbscan.cc.o.d"
  "test_apps_dbscan"
  "test_apps_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
