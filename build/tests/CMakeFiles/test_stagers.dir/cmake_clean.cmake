file(REMOVE_RECURSE
  "CMakeFiles/test_stagers.dir/test_stagers.cc.o"
  "CMakeFiles/test_stagers.dir/test_stagers.cc.o.d"
  "test_stagers"
  "test_stagers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stagers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
