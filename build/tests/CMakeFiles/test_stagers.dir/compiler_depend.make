# Empty compiler generated dependencies file for test_stagers.
# This may be replaced when dependencies are built.
