# Empty compiler generated dependencies file for test_yaml.
# This may be replaced when dependencies are built.
