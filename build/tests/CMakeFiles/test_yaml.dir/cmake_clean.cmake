file(REMOVE_RECURSE
  "CMakeFiles/test_yaml.dir/test_yaml.cc.o"
  "CMakeFiles/test_yaml.dir/test_yaml.cc.o.d"
  "test_yaml"
  "test_yaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
