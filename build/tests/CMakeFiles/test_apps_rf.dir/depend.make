# Empty dependencies file for test_apps_rf.
# This may be replaced when dependencies are built.
