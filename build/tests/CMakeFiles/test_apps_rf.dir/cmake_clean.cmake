file(REMOVE_RECURSE
  "CMakeFiles/test_apps_rf.dir/test_apps_rf.cc.o"
  "CMakeFiles/test_apps_rf.dir/test_apps_rf.cc.o.d"
  "test_apps_rf"
  "test_apps_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
