# Empty dependencies file for gray_scott_sim.
# This may be replaced when dependencies are built.
