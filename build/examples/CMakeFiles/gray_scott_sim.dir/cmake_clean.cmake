file(REMOVE_RECURSE
  "CMakeFiles/gray_scott_sim.dir/gray_scott_sim.cpp.o"
  "CMakeFiles/gray_scott_sim.dir/gray_scott_sim.cpp.o.d"
  "gray_scott_sim"
  "gray_scott_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gray_scott_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
