# Empty dependencies file for out_of_core_sort.
# This may be replaced when dependencies are built.
