file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_sort.dir/out_of_core_sort.cpp.o"
  "CMakeFiles/out_of_core_sort.dir/out_of_core_sort.cpp.o.d"
  "out_of_core_sort"
  "out_of_core_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
