# Empty dependencies file for kmeans_inertia.
# This may be replaced when dependencies are built.
