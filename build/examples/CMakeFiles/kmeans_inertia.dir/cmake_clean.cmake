file(REMOVE_RECURSE
  "CMakeFiles/kmeans_inertia.dir/kmeans_inertia.cpp.o"
  "CMakeFiles/kmeans_inertia.dir/kmeans_inertia.cpp.o.d"
  "kmeans_inertia"
  "kmeans_inertia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_inertia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
