file(REMOVE_RECURSE
  "libmm_apps.a"
)
