
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/datagen.cc" "src/apps/CMakeFiles/mm_apps.dir/datagen.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/datagen.cc.o.d"
  "/root/repo/src/apps/dbscan.cc" "src/apps/CMakeFiles/mm_apps.dir/dbscan.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/dbscan.cc.o.d"
  "/root/repo/src/apps/gray_scott.cc" "src/apps/CMakeFiles/mm_apps.dir/gray_scott.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/gray_scott.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/mm_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/random_forest.cc" "src/apps/CMakeFiles/mm_apps.dir/random_forest.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/random_forest.cc.o.d"
  "/root/repo/src/apps/reference.cc" "src/apps/CMakeFiles/mm_apps.dir/reference.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/reference.cc.o.d"
  "/root/repo/src/apps/sparklike.cc" "src/apps/CMakeFiles/mm_apps.dir/sparklike.cc.o" "gcc" "src/apps/CMakeFiles/mm_apps.dir/sparklike.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
