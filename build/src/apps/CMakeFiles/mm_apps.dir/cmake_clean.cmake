file(REMOVE_RECURSE
  "CMakeFiles/mm_apps.dir/datagen.cc.o"
  "CMakeFiles/mm_apps.dir/datagen.cc.o.d"
  "CMakeFiles/mm_apps.dir/dbscan.cc.o"
  "CMakeFiles/mm_apps.dir/dbscan.cc.o.d"
  "CMakeFiles/mm_apps.dir/gray_scott.cc.o"
  "CMakeFiles/mm_apps.dir/gray_scott.cc.o.d"
  "CMakeFiles/mm_apps.dir/kmeans.cc.o"
  "CMakeFiles/mm_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/mm_apps.dir/random_forest.cc.o"
  "CMakeFiles/mm_apps.dir/random_forest.cc.o.d"
  "CMakeFiles/mm_apps.dir/reference.cc.o"
  "CMakeFiles/mm_apps.dir/reference.cc.o.d"
  "CMakeFiles/mm_apps.dir/sparklike.cc.o"
  "CMakeFiles/mm_apps.dir/sparklike.cc.o.d"
  "libmm_apps.a"
  "libmm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
