# Empty dependencies file for mm_apps.
# This may be replaced when dependencies are built.
