file(REMOVE_RECURSE
  "CMakeFiles/mm_util.dir/bitmap.cc.o"
  "CMakeFiles/mm_util.dir/bitmap.cc.o.d"
  "CMakeFiles/mm_util.dir/byte_units.cc.o"
  "CMakeFiles/mm_util.dir/byte_units.cc.o.d"
  "CMakeFiles/mm_util.dir/logging.cc.o"
  "CMakeFiles/mm_util.dir/logging.cc.o.d"
  "CMakeFiles/mm_util.dir/stats.cc.o"
  "CMakeFiles/mm_util.dir/stats.cc.o.d"
  "CMakeFiles/mm_util.dir/status.cc.o"
  "CMakeFiles/mm_util.dir/status.cc.o.d"
  "CMakeFiles/mm_util.dir/uri.cc.o"
  "CMakeFiles/mm_util.dir/uri.cc.o.d"
  "CMakeFiles/mm_util.dir/yaml.cc.o"
  "CMakeFiles/mm_util.dir/yaml.cc.o.d"
  "libmm_util.a"
  "libmm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
