
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_manager.cc" "src/storage/CMakeFiles/mm_storage.dir/buffer_manager.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/buffer_manager.cc.o.d"
  "/root/repo/src/storage/metadata.cc" "src/storage/CMakeFiles/mm_storage.dir/metadata.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/metadata.cc.o.d"
  "/root/repo/src/storage/stager_posix.cc" "src/storage/CMakeFiles/mm_storage.dir/stager_posix.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/stager_posix.cc.o.d"
  "/root/repo/src/storage/stager_registry.cc" "src/storage/CMakeFiles/mm_storage.dir/stager_registry.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/stager_registry.cc.o.d"
  "/root/repo/src/storage/stager_shdf.cc" "src/storage/CMakeFiles/mm_storage.dir/stager_shdf.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/stager_shdf.cc.o.d"
  "/root/repo/src/storage/stager_spar.cc" "src/storage/CMakeFiles/mm_storage.dir/stager_spar.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/stager_spar.cc.o.d"
  "/root/repo/src/storage/tier_store.cc" "src/storage/CMakeFiles/mm_storage.dir/tier_store.cc.o" "gcc" "src/storage/CMakeFiles/mm_storage.dir/tier_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
