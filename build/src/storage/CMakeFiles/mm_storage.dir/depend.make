# Empty dependencies file for mm_storage.
# This may be replaced when dependencies are built.
