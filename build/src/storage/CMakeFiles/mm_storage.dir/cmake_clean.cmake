file(REMOVE_RECURSE
  "CMakeFiles/mm_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/mm_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/mm_storage.dir/metadata.cc.o"
  "CMakeFiles/mm_storage.dir/metadata.cc.o.d"
  "CMakeFiles/mm_storage.dir/stager_posix.cc.o"
  "CMakeFiles/mm_storage.dir/stager_posix.cc.o.d"
  "CMakeFiles/mm_storage.dir/stager_registry.cc.o"
  "CMakeFiles/mm_storage.dir/stager_registry.cc.o.d"
  "CMakeFiles/mm_storage.dir/stager_shdf.cc.o"
  "CMakeFiles/mm_storage.dir/stager_shdf.cc.o.d"
  "CMakeFiles/mm_storage.dir/stager_spar.cc.o"
  "CMakeFiles/mm_storage.dir/stager_spar.cc.o.d"
  "CMakeFiles/mm_storage.dir/tier_store.cc.o"
  "CMakeFiles/mm_storage.dir/tier_store.cc.o.d"
  "libmm_storage.a"
  "libmm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
