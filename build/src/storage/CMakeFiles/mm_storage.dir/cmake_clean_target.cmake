file(REMOVE_RECURSE
  "libmm_storage.a"
)
