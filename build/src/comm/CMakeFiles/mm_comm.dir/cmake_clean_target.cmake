file(REMOVE_RECURSE
  "libmm_comm.a"
)
