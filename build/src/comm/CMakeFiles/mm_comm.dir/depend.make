# Empty dependencies file for mm_comm.
# This may be replaced when dependencies are built.
