file(REMOVE_RECURSE
  "CMakeFiles/mm_comm.dir/communicator.cc.o"
  "CMakeFiles/mm_comm.dir/communicator.cc.o.d"
  "CMakeFiles/mm_comm.dir/dlock.cc.o"
  "CMakeFiles/mm_comm.dir/dlock.cc.o.d"
  "CMakeFiles/mm_comm.dir/launch.cc.o"
  "CMakeFiles/mm_comm.dir/launch.cc.o.d"
  "CMakeFiles/mm_comm.dir/world.cc.o"
  "CMakeFiles/mm_comm.dir/world.cc.o.d"
  "libmm_comm.a"
  "libmm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
