
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cc" "src/comm/CMakeFiles/mm_comm.dir/communicator.cc.o" "gcc" "src/comm/CMakeFiles/mm_comm.dir/communicator.cc.o.d"
  "/root/repo/src/comm/dlock.cc" "src/comm/CMakeFiles/mm_comm.dir/dlock.cc.o" "gcc" "src/comm/CMakeFiles/mm_comm.dir/dlock.cc.o.d"
  "/root/repo/src/comm/launch.cc" "src/comm/CMakeFiles/mm_comm.dir/launch.cc.o" "gcc" "src/comm/CMakeFiles/mm_comm.dir/launch.cc.o.d"
  "/root/repo/src/comm/world.cc" "src/comm/CMakeFiles/mm_comm.dir/world.cc.o" "gcc" "src/comm/CMakeFiles/mm_comm.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
