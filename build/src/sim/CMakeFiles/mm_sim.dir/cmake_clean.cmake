file(REMOVE_RECURSE
  "CMakeFiles/mm_sim.dir/cluster.cc.o"
  "CMakeFiles/mm_sim.dir/cluster.cc.o.d"
  "CMakeFiles/mm_sim.dir/cost_model.cc.o"
  "CMakeFiles/mm_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/mm_sim.dir/device.cc.o"
  "CMakeFiles/mm_sim.dir/device.cc.o.d"
  "CMakeFiles/mm_sim.dir/network.cc.o"
  "CMakeFiles/mm_sim.dir/network.cc.o.d"
  "libmm_sim.a"
  "libmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
