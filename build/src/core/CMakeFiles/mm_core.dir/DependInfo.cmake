
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coherence.cc" "src/core/CMakeFiles/mm_core.dir/coherence.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/coherence.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/mm_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/options.cc.o.d"
  "/root/repo/src/core/pcache.cc" "src/core/CMakeFiles/mm_core.dir/pcache.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/pcache.cc.o.d"
  "/root/repo/src/core/prefetcher.cc" "src/core/CMakeFiles/mm_core.dir/prefetcher.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/prefetcher.cc.o.d"
  "/root/repo/src/core/service.cc" "src/core/CMakeFiles/mm_core.dir/service.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/service.cc.o.d"
  "/root/repo/src/core/transaction.cc" "src/core/CMakeFiles/mm_core.dir/transaction.cc.o" "gcc" "src/core/CMakeFiles/mm_core.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/mm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
