file(REMOVE_RECURSE
  "CMakeFiles/mm_core.dir/coherence.cc.o"
  "CMakeFiles/mm_core.dir/coherence.cc.o.d"
  "CMakeFiles/mm_core.dir/options.cc.o"
  "CMakeFiles/mm_core.dir/options.cc.o.d"
  "CMakeFiles/mm_core.dir/pcache.cc.o"
  "CMakeFiles/mm_core.dir/pcache.cc.o.d"
  "CMakeFiles/mm_core.dir/prefetcher.cc.o"
  "CMakeFiles/mm_core.dir/prefetcher.cc.o.d"
  "CMakeFiles/mm_core.dir/service.cc.o"
  "CMakeFiles/mm_core.dir/service.cc.o.d"
  "CMakeFiles/mm_core.dir/transaction.cc.o"
  "CMakeFiles/mm_core.dir/transaction.cc.o.d"
  "libmm_core.a"
  "libmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
