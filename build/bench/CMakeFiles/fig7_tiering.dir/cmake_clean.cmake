file(REMOVE_RECURSE
  "CMakeFiles/fig7_tiering.dir/fig7_tiering.cc.o"
  "CMakeFiles/fig7_tiering.dir/fig7_tiering.cc.o.d"
  "fig7_tiering"
  "fig7_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
