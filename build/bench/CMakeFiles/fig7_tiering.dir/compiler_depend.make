# Empty compiler generated dependencies file for fig7_tiering.
# This may be replaced when dependencies are built.
