# Empty compiler generated dependencies file for micro_access_overhead.
# This may be replaced when dependencies are built.
