file(REMOVE_RECURSE
  "CMakeFiles/micro_access_overhead.dir/micro_access_overhead.cc.o"
  "CMakeFiles/micro_access_overhead.dir/micro_access_overhead.cc.o.d"
  "micro_access_overhead"
  "micro_access_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_access_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
