# Empty dependencies file for fig8_mem_scaling.
# This may be replaced when dependencies are built.
