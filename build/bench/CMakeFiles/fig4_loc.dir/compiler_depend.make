# Empty compiler generated dependencies file for fig4_loc.
# This may be replaced when dependencies are built.
