file(REMOVE_RECURSE
  "CMakeFiles/fig4_loc.dir/fig4_loc.cc.o"
  "CMakeFiles/fig4_loc.dir/fig4_loc.cc.o.d"
  "fig4_loc"
  "fig4_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
