file(REMOVE_RECURSE
  "CMakeFiles/fig5_weak_scaling.dir/fig5_weak_scaling.cc.o"
  "CMakeFiles/fig5_weak_scaling.dir/fig5_weak_scaling.cc.o.d"
  "fig5_weak_scaling"
  "fig5_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
