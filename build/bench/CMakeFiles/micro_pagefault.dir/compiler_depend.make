# Empty compiler generated dependencies file for micro_pagefault.
# This may be replaced when dependencies are built.
