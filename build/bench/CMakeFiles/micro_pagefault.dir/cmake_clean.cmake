file(REMOVE_RECURSE
  "CMakeFiles/micro_pagefault.dir/micro_pagefault.cc.o"
  "CMakeFiles/micro_pagefault.dir/micro_pagefault.cc.o.d"
  "micro_pagefault"
  "micro_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
