
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_resolution.cc" "bench/CMakeFiles/fig6_resolution.dir/fig6_resolution.cc.o" "gcc" "bench/CMakeFiles/fig6_resolution.dir/fig6_resolution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/mm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
