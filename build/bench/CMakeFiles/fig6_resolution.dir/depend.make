# Empty dependencies file for fig6_resolution.
# This may be replaced when dependencies are built.
