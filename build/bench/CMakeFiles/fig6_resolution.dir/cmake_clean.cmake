file(REMOVE_RECURSE
  "CMakeFiles/fig6_resolution.dir/fig6_resolution.cc.o"
  "CMakeFiles/fig6_resolution.dir/fig6_resolution.cc.o.d"
  "fig6_resolution"
  "fig6_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
